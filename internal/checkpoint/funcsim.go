package checkpoint

import (
	"fmt"

	"cawa/internal/memory"
	"cawa/internal/simt"
)

// FunctionalLaunch executes one kernel launch functionally — correct
// memory effects, no timing model. It is the fast-forward half of
// checkpoint/restore and sampled simulation: launches that precede a
// restore point (or fall outside a detailed sample window) replay here
// in milliseconds, leaving the functional memory exactly as the timed
// engines would (the workloads are data-race-free across blocks, which
// the per-workload Verify references check end to end).
//
// Blocks run sequentially; within a block, live warps round-robin one
// instruction at a time and barriers release when every live warp has
// arrived — the same semantics the SM model enforces, minus the clock.
func FunctionalLaunch(k *simt.Kernel, mem *memory.Memory, warpSize int) error {
	if err := k.Validate(); err != nil {
		return err
	}
	warpsPerBlock := k.WarpsPerBlock(warpSize)
	progLen := int32(k.Program.Len())
	warps := make([]*simt.Warp, warpsPerBlock)
	var step simt.Step

	for block := 0; block < k.GridDim; block++ {
		var shared []int64
		if k.SharedWords > 0 {
			shared = make([]int64, k.SharedWords)
		}
		ctx := simt.ExecContext{
			Mem:      mem,
			Shared:   shared,
			Params:   k.Params,
			BlockID:  block,
			GridDim:  k.GridDim,
			BlockDim: k.BlockDim,
		}
		for i := 0; i < warpsPerBlock; i++ {
			lanes := k.BlockDim - i*warpSize
			if lanes > warpSize {
				lanes = warpSize
			}
			warps[i] = simt.NewWarp(block*warpsPerBlock+i, block, i, lanes, warpSize, progLen)
		}
		for {
			progressed := false
			live := 0
			atBarrier := 0
			for _, w := range warps {
				if w.Done() {
					continue
				}
				live++
				if w.AtBarrier {
					atBarrier++
					continue
				}
				simt.ExecInto(w, k.Program, &ctx, &step)
				progressed = true
			}
			if live == 0 {
				break
			}
			if atBarrier == live {
				for _, w := range warps {
					if !w.Done() {
						w.AtBarrier = false
					}
				}
				continue
			}
			if !progressed {
				return fmt.Errorf("checkpoint: kernel %s block %d deadlocked (%d live, %d at barrier)",
					k.Name, block, live, atBarrier)
			}
		}
	}
	return nil
}
