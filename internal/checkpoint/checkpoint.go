// Package checkpoint serializes the full simulated-GPU state at a
// cycle boundary and restores it byte-identically: SM pipelines and
// per-warp reconvergence stacks, L1/L2 tag arrays with CACP/SRRIP
// metadata, MSHRs, in-flight memory-system events, scheduler state
// (GTO/age, CAWA criticality counters), and the functional memory.
//
// The package sits above every simulator layer (it imports core, gpu,
// sm, and the leaves), because the concrete types of the criticality
// providers and L1 replacement policies live in internal/core while
// the device that owns them lives in internal/gpu — only a layer above
// both can type-switch them into serializable form.
//
// Wire format (Encode/Decode):
//
//	magic   "CAWACKPT"                  8 bytes
//	version uint32 big-endian           format version (FormatVersion)
//	digest  SHA-256 over the payload    32 bytes
//	payload gob(Snapshot)
//
// Every captured structure is map-free plain data (maps are flattened
// to sorted slices by the owning packages), so the gob payload — and
// therefore the digest — is a deterministic function of simulator
// state. Two runs that agree on the digest agree on every architectural
// and timing bit the simulator carries.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/simt"
	"cawa/internal/sm"
)

// FormatVersion is the checkpoint wire-format version. Bump it on any
// change to the Snapshot schema or to the capture semantics of any
// layer below; stale checkpoints then fail Decode with ErrIncompatible
// and callers fall back to a full run (clean cache miss, never an
// error).
const FormatVersion = 1

var magic = [8]byte{'C', 'A', 'W', 'A', 'C', 'K', 'P', 'T'}

// ErrIncompatible marks a checkpoint from a different format version
// (or a file that is not a checkpoint at all). Callers treat it as a
// cache miss.
var ErrIncompatible = errors.New("checkpoint: incompatible format")

// ErrCorrupt marks a truncated or bit-damaged checkpoint (digest
// mismatch, short read). Callers treat it as a cache miss.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// Meta identifies what a snapshot belongs to. It rides inside the
// digest-protected payload so a checkpoint can never be resumed against
// the wrong run.
type Meta struct {
	// EngineVersion is the harness engine fingerprint the snapshot was
	// produced by (harness.EngineVersion).
	EngineVersion string
	// Workload and Params identity.
	Workload string
	Scale    float64
	Seed     int64
	// SystemKey is the design point's stable identity (SystemConfig.Key).
	SystemKey string
	// LaunchIndex is the index of the in-flight launch (how many
	// launches completed before the checkpoint).
	LaunchIndex int
	// Cycle is the global cycle the snapshot was taken at.
	Cycle int64
}

// ProviderState is the serialized form of one SM's criticality
// provider, keyed by concrete type.
type ProviderState struct {
	Kind   string // "null", "cpl", "oracle"
	CPL    core.CPLState
	Oracle core.OracleState
}

// PolicyState is the serialized form of one SM's L1D replacement
// policy, keyed by concrete type. LRU and SRRIP keep all their state in
// the cache lines (captured with the tag arrays), so only CACP carries
// a payload.
type PolicyState struct {
	Kind string // "lru", "srrip", "cacp"
	CACP core.CACPState
}

// Snapshot is the complete serialized state of a mid-launch GPU.
type Snapshot struct {
	Meta      Meta
	GPU       gpu.State
	Providers []ProviderState // per SM
	Policies  []PolicyState   // per SM
}

// Capture snapshots a mid-launch GPU, including the criticality
// providers and L1 policies the device layer cannot see into.
func Capture(g *gpu.GPU, meta Meta) (*Snapshot, error) {
	st, err := g.Capture()
	if err != nil {
		return nil, err
	}
	meta.Cycle = st.Cycle
	s := &Snapshot{Meta: meta, GPU: st}
	for _, m := range g.SMs() {
		ps, err := captureProvider(m.Crit())
		if err != nil {
			return nil, fmt.Errorf("checkpoint: sm %d: %w", m.ID, err)
		}
		ls, err := capturePolicy(m.L1D().Cache().Policy())
		if err != nil {
			return nil, fmt.Errorf("checkpoint: sm %d: %w", m.ID, err)
		}
		s.Providers = append(s.Providers, ps)
		s.Policies = append(s.Policies, ls)
	}
	return s, nil
}

// Restore applies a snapshot onto a freshly built GPU (same
// configuration, same design point, same workload memory shape) and
// arms it for gpu.Resume. k must be the kernel the snapshot was
// captured inside.
func Restore(s *Snapshot, g *gpu.GPU, k *simt.Kernel) error {
	if len(s.Providers) != len(g.SMs()) || len(s.Policies) != len(g.SMs()) {
		return fmt.Errorf("checkpoint: restore SM count mismatch (have %d, snapshot %d/%d)",
			len(g.SMs()), len(s.Providers), len(s.Policies))
	}
	if err := g.Restore(s.GPU, k); err != nil {
		return err
	}
	for i, m := range g.SMs() {
		if err := restoreProvider(m.Crit(), s.Providers[i]); err != nil {
			return fmt.Errorf("checkpoint: sm %d: %w", i, err)
		}
		if err := restorePolicy(m.L1D().Cache().Policy(), s.Policies[i]); err != nil {
			return fmt.Errorf("checkpoint: sm %d: %w", i, err)
		}
	}
	return nil
}

func captureProvider(p sm.CriticalityProvider) (ProviderState, error) {
	switch p := p.(type) {
	case sm.NullCriticality:
		return ProviderState{Kind: "null"}, nil
	case *core.CPL:
		return ProviderState{Kind: "cpl", CPL: p.Capture()}, nil
	case *core.Oracle:
		return ProviderState{Kind: "oracle", Oracle: p.Capture()}, nil
	default:
		return ProviderState{}, fmt.Errorf("criticality provider %T is not checkpointable", p)
	}
}

func restoreProvider(p sm.CriticalityProvider, st ProviderState) error {
	switch p := p.(type) {
	case sm.NullCriticality:
		if st.Kind != "null" {
			return providerMismatch("null", st.Kind)
		}
	case *core.CPL:
		if st.Kind != "cpl" {
			return providerMismatch("cpl", st.Kind)
		}
		p.Restore(st.CPL)
	case *core.Oracle:
		if st.Kind != "oracle" {
			return providerMismatch("oracle", st.Kind)
		}
		p.Restore(st.Oracle)
	default:
		return fmt.Errorf("criticality provider %T is not checkpointable", p)
	}
	return nil
}

func capturePolicy(p interface{ Name() string }) (PolicyState, error) {
	switch p := p.(type) {
	case *core.CACP:
		return PolicyState{Kind: "cacp", CACP: p.Capture()}, nil
	default:
		switch p.Name() {
		case "LRU":
			return PolicyState{Kind: "lru"}, nil
		case "SRRIP":
			return PolicyState{Kind: "srrip"}, nil
		}
		return PolicyState{}, fmt.Errorf("L1 policy %T is not checkpointable", p)
	}
}

func restorePolicy(p interface{ Name() string }, st PolicyState) error {
	switch p := p.(type) {
	case *core.CACP:
		if st.Kind != "cacp" {
			return fmt.Errorf("L1 policy restore kind mismatch (policy cacp, snapshot %s)", st.Kind)
		}
		return p.Restore(st.CACP)
	default:
		want := ""
		switch p.Name() {
		case "LRU":
			want = "lru"
		case "SRRIP":
			want = "srrip"
		default:
			return fmt.Errorf("L1 policy %T is not checkpointable", p)
		}
		if st.Kind != want {
			return fmt.Errorf("L1 policy restore kind mismatch (policy %s, snapshot %s)", want, st.Kind)
		}
		return nil
	}
}

func providerMismatch(have, got string) error {
	return fmt.Errorf("provider restore kind mismatch (provider %s, snapshot %s)", have, got)
}

// payload gob-encodes a snapshot.
func payload(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// StateHash returns the hex SHA-256 digest of the snapshot's canonical
// serialized payload — the state fingerprint the round-trip tests
// compare between interrupted and uninterrupted runs.
func StateHash(s *Snapshot) (string, error) {
	p, err := payload(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:]), nil
}

// Encode writes the versioned, digest-protected checkpoint and returns
// the payload's hex digest.
func Encode(w io.Writer, s *Snapshot) (string, error) {
	p, err := payload(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(p)
	var hdr [12]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint32(hdr[8:], FormatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return "", fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(sum[:]); err != nil {
		return "", fmt.Errorf("checkpoint: write digest: %w", err)
	}
	if _, err := w.Write(p); err != nil {
		return "", fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return hex.EncodeToString(sum[:]), nil
}

// Decode reads a checkpoint, verifying the magic, format version, and
// payload digest. A wrong magic or version returns ErrIncompatible; a
// short read or digest mismatch returns ErrCorrupt (both wrapped).
// Callers map either to a clean cache miss.
func Decode(r io.Reader) (*Snapshot, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrIncompatible)
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrIncompatible, v, FormatVersion)
	}
	var sum [sha256.Size]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: short digest: %v", ErrCorrupt, err)
	}
	p, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: read payload: %v", ErrCorrupt, err)
	}
	if got := sha256.Sum256(p); got != sum {
		return nil, fmt.Errorf("%w: digest mismatch", ErrCorrupt)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return &s, nil
}
