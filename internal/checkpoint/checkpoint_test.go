package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

var testParams = workloads.Params{Scale: 0.05, Seed: 3}

func testConfig() config.Config {
	cfg := config.Small()
	cfg.NumSMs = 4
	return cfg
}

type engineVariant struct {
	name      string
	smWorkers int
	lookahead bool
	noFF      bool
}

var engineVariants = []engineVariant{
	{name: "serial-ticked", noFF: true},
	{name: "serial-ff"},
	{name: "parallel", smWorkers: 4},
	{name: "parallel-lookahead", smWorkers: 4, lookahead: true},
}

func buildGPU(t *testing.T, sc core.SystemConfig, wl workloads.Workload, v engineVariant) *gpu.GPU {
	t.Helper()
	g, err := sc.NewGPU(testConfig(), wl.Mem())
	if err != nil {
		t.Fatalf("NewGPU: %v", err)
	}
	g.SMWorkers = v.smWorkers
	g.Lookahead = v.lookahead
	g.DisableFastForward = v.noFF
	return g
}

type refRun struct {
	launches []*stats.Launch
	words    []int64
	span     gpu.LaunchSpan // span of the launch the checkpoint targets
	launchIx int            // its index
	hashAt2  string         // StateHash at cycle t2 inside that launch
	t1, t2   int64
}

// runReference runs the workload uninterrupted on the serial ticked
// engine, picking two probe cycles inside the last launch: t1 (the
// checkpoint cycle) and t2 (a later cycle whose StateHash the resumed
// run must reproduce).
func runReference(t *testing.T, workload string, sc core.SystemConfig) refRun {
	t.Helper()
	wl, err := workloads.New(workload, testParams)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	g := buildGPU(t, sc, wl, engineVariants[0])

	// First pass just to learn the launch spans.
	var launches []*stats.Launch
	for {
		k, ok := wl.Next()
		if !ok {
			break
		}
		out, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
		launches = append(launches, out)
	}
	if err := wl.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(g.Spans) == 0 {
		t.Fatal("no launch spans")
	}
	r := refRun{launches: launches, words: wl.Mem().Capture().Words}
	r.launchIx = len(g.Spans) - 1
	r.span = g.Spans[r.launchIx]
	if r.span.End-r.span.Start < 8 {
		t.Fatalf("span too short to probe: %+v", r.span)
	}
	r.t1 = r.span.Start + (r.span.End-r.span.Start)/2
	r.t2 = r.t1 + (r.span.End-r.t1)/2
	if r.t2 <= r.t1 {
		r.t2 = r.t1 + 1
	}

	// Second uninterrupted pass recording the StateHash at t2.
	wl2, err := workloads.New(workload, testParams)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	g2 := buildGPU(t, sc, wl2, engineVariants[0])
	ix := 0
	for {
		k, ok := wl2.Next()
		if !ok {
			break
		}
		if ix == r.launchIx {
			armCapture(t, g2, r.t2, &r.hashAt2, nil)
		}
		if _, err := g2.Launch(context.Background(), k); err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
		ix++
	}
	if r.hashAt2 == "" {
		t.Fatalf("reference run never reached probe cycle %d", r.t2)
	}
	return r
}

// armCapture installs a PerCycle hook that captures the GPU at cycle
// at, stores the snapshot's StateHash into hash (and the snapshot into
// snap when non-nil), then disarms itself.
func armCapture(t *testing.T, g *gpu.GPU, at int64, hash *string, snap **Snapshot) {
	t.Helper()
	g.PerCycle = func(g *gpu.GPU, cycle int64) {
		if cycle != at {
			return
		}
		s, err := Capture(g, Meta{Workload: "test"})
		if err != nil {
			t.Errorf("capture at %d: %v", cycle, err)
			g.PerCycle, g.PerCycleWake = nil, nil
			return
		}
		h, err := StateHash(s)
		if err != nil {
			t.Errorf("hash at %d: %v", cycle, err)
		}
		*hash = h
		if snap != nil {
			*snap = s
		}
		g.PerCycle, g.PerCycleWake = nil, nil
	}
	g.PerCycleWake = func(now int64) int64 {
		if now < at {
			return at
		}
		return now + 1
	}
}

// TestRoundTrip checkpoints a run mid-launch on one engine, restores
// onto another (every pairing of the engine matrix in long mode), and
// requires: identical launch statistics for the interrupted launch,
// identical final memory, a passing workload Verify, and an identical
// StateHash at a later probe cycle of the resumed run.
func TestRoundTrip(t *testing.T) {
	systems := map[string]core.SystemConfig{
		"lrr":  {Scheduler: "lrr"},
		"gto":  {Scheduler: "gto"},
		"cawa": core.CAWA(),
	}
	type pairing struct{ capture, resume engineVariant }
	pairs := []pairing{
		{engineVariants[0], engineVariants[3]}, // serial-ticked -> parallel-lookahead
		{engineVariants[3], engineVariants[1]}, // parallel-lookahead -> serial-ff
	}
	if !testing.Short() {
		pairs = pairs[:0]
		for _, c := range engineVariants {
			for _, r := range engineVariants {
				pairs = append(pairs, pairing{c, r})
			}
		}
	}

	const workload = "kmeans"
	for name, sc := range systems {
		sc := sc
		t.Run(name, func(t *testing.T) {
			ref := runReference(t, workload, sc)
			for _, p := range pairs {
				t.Run(p.capture.name+"_to_"+p.resume.name, func(t *testing.T) {
					blob := captureRun(t, workload, sc, p.capture, ref)
					resumeRun(t, workload, sc, p.resume, ref, blob)
				})
			}
		})
	}
}

// snapshotAt runs the workload on the given engine and snapshots it at
// cycle at inside launch launchIx, returning the snapshot and its
// StateHash.
func snapshotAt(t *testing.T, workload string, sc core.SystemConfig, v engineVariant, launchIx int, at int64) (*Snapshot, string) {
	t.Helper()
	wl, err := workloads.New(workload, testParams)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	g := buildGPU(t, sc, wl, v)
	var snap *Snapshot
	var hash string
	ix := 0
	for {
		k, ok := wl.Next()
		if !ok {
			break
		}
		if ix == launchIx {
			armCapture(t, g, at, &hash, &snap)
		}
		if _, err := g.Launch(context.Background(), k); err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
		ix++
	}
	if snap == nil {
		t.Fatalf("%s run never reached cycle %d of launch %d", v.name, at, launchIx)
	}
	return snap, hash
}

// captureRun re-runs the workload on the capture engine, snapshots it
// at ref.t1 inside the target launch, and returns the encoded
// checkpoint.
func captureRun(t *testing.T, workload string, sc core.SystemConfig, v engineVariant, ref refRun) []byte {
	t.Helper()
	snap, _ := snapshotAt(t, workload, sc, v, ref.launchIx, ref.t1)
	var buf bytes.Buffer
	if _, err := Encode(&buf, snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// resumeRun decodes the checkpoint, rebuilds the workload, replays the
// completed launches functionally, restores, resumes on the resume
// engine, and checks every fidelity requirement against the reference.
func resumeRun(t *testing.T, workload string, sc core.SystemConfig, v engineVariant, ref refRun, blob []byte) {
	t.Helper()
	snap, err := Decode(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	wl, err := workloads.New(workload, testParams)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	cfg := testConfig()
	for i := 0; i < ref.launchIx; i++ {
		k, ok := wl.Next()
		if !ok {
			t.Fatalf("workload ended before launch %d", i)
		}
		if err := FunctionalLaunch(k, wl.Mem(), cfg.WarpSize); err != nil {
			t.Fatalf("functional launch %d: %v", i, err)
		}
	}
	k, ok := wl.Next()
	if !ok {
		t.Fatalf("workload ended before the checkpointed launch")
	}
	g := buildGPU(t, sc, wl, v)
	if err := Restore(snap, g, k); err != nil {
		t.Fatalf("restore: %v", err)
	}
	var hash2 string
	armCapture(t, g, ref.t2, &hash2, nil)
	out, err := g.Resume(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if hash2 != ref.hashAt2 {
		t.Errorf("state hash at cycle %d diverged after restore:\n resumed %s\n reference %s",
			ref.t2, hash2, ref.hashAt2)
	}
	if !reflect.DeepEqual(out, ref.launches[ref.launchIx]) {
		t.Errorf("resumed launch stats differ from uninterrupted run:\n got  %+v\n want %+v",
			out, ref.launches[ref.launchIx])
	}
	// Any launches after the checkpointed one run normally.
	ix := ref.launchIx + 1
	for {
		k, ok := wl.Next()
		if !ok {
			break
		}
		out, err := g.Launch(context.Background(), k)
		if err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
		if !reflect.DeepEqual(out, ref.launches[ix]) {
			t.Errorf("post-resume launch %d stats differ", ix)
		}
		ix++
	}
	if err := wl.Verify(); err != nil {
		t.Errorf("verify after resume: %v", err)
	}
	if got := wl.Mem().Capture().Words; !reflect.DeepEqual(got, ref.words) {
		t.Errorf("final memory image differs from uninterrupted run")
	}
}

// TestDecodeRejectsDamage covers the cache-miss paths: truncation, bit
// damage, wrong magic, and a stale format version must all fail Decode
// with the right sentinel, never a panic or a silent success.
func TestDecodeRejectsDamage(t *testing.T) {
	wl, err := workloads.New("vectoradd", workloads.Params{Scale: 0.05, Seed: 1})
	if err != nil {
		// vectoradd may not exist in the catalog; fall back to any.
		wl, err = workloads.New(workloads.Names()[0], workloads.Params{Scale: 0.05, Seed: 1})
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
	}
	sc := core.SystemConfig{Scheduler: "lrr"}
	g := buildGPU(t, sc, wl, engineVariants[0])
	var snap *Snapshot
	var hash string
	k, ok := wl.Next()
	if !ok {
		t.Fatal("no kernel")
	}
	g.PerCycle = func(g *gpu.GPU, cycle int64) {
		if snap != nil {
			return
		}
		s, err := Capture(g, Meta{Workload: wl.Name()})
		if err != nil {
			// Too early (e.g. first cycles): keep trying.
			return
		}
		snap = s
		hash, _ = StateHash(s)
		g.PerCycle, g.PerCycleWake = nil, nil
	}
	g.PerCycleWake = func(now int64) int64 { return now + 1 }
	if _, err := g.Launch(context.Background(), k); err != nil {
		t.Fatalf("launch: %v", err)
	}
	if snap == nil || hash == "" {
		t.Fatal("never captured")
	}

	var buf bytes.Buffer
	digest, err := Encode(&buf, snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if digest != hash {
		t.Errorf("Encode digest %s != StateHash %s", digest, hash)
	}
	blob := buf.Bytes()

	if _, err := Decode(bytes.NewReader(blob)); err != nil {
		t.Fatalf("clean decode: %v", err)
	}
	if _, err := Decode(bytes.NewReader(blob[:len(blob)/2])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: want ErrCorrupt, got %v", err)
	}
	damaged := append([]byte(nil), blob...)
	damaged[len(damaged)-1] ^= 0x40
	if _, err := Decode(bytes.NewReader(damaged)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit damage: want ErrCorrupt, got %v", err)
	}
	wrongMagic := append([]byte(nil), blob...)
	wrongMagic[0] = 'X'
	if _, err := Decode(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrIncompatible) {
		t.Errorf("bad magic: want ErrIncompatible, got %v", err)
	}
	staleVersion := append([]byte(nil), blob...)
	staleVersion[11]++ // bump the big-endian version's low byte
	if _, err := Decode(bytes.NewReader(staleVersion)); !errors.Is(err, ErrIncompatible) {
		t.Errorf("stale version: want ErrIncompatible, got %v", err)
	}
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: want ErrCorrupt, got %v", err)
	}
}

// TestRoundTripAllWorkloads extends the kmeans matrix of TestRoundTrip
// to the whole paper catalog: every workload × {lrr, gto, cawa}
// checkpoints mid-launch on the serial ticked engine and resumes on
// the parallel lookahead engine (the most adversarial pairing: ticked
// state restored into batched epoch execution), checking launch stats,
// final memory, Verify, and the later-cycle StateHash. Short mode —
// what check.sh's GOMAXPROCS race matrix runs — rotates each workload
// through one of the three systems to bound -race wall clock; full
// mode covers all combinations.
func TestRoundTripAllWorkloads(t *testing.T) {
	systems := []struct {
		name string
		sc   core.SystemConfig
	}{
		{"lrr", core.SystemConfig{Scheduler: "lrr"}},
		{"gto", core.SystemConfig{Scheduler: "gto"}},
		{"cawa", core.CAWA()},
	}
	for wi, workload := range workloads.Names() {
		workload := workload
		for si, sys := range systems {
			if testing.Short() && si != wi%len(systems) {
				continue
			}
			sys := sys
			t.Run(workload+"/"+sys.name, func(t *testing.T) {
				ref := runReference(t, workload, sys.sc)
				blob := captureRun(t, workload, sys.sc, engineVariants[0], ref)
				resumeRun(t, workload, sys.sc, engineVariants[3], ref, blob)
			})
		}
	}
}

// TestLookaheadMidSpanCheckpoint proves a checkpoint requested at a
// cycle strictly inside a lookahead span is honored at exactly that
// cycle with state identical to the serial ticked engine's. Two parts:
// a probe run with a far-future wake hint (which never clamps the
// horizon) records the engine's natural span boundaries — PerCycle
// only fires on engine-clean boundary cycles, so a gap between
// consecutive observations is a genuine multi-cycle span. A cycle
// inside the widest gap is then requested as a capture point: the
// PerCycleWake hint must truncate the planned span at exactly that
// cycle, and the resulting snapshot must hash identically to the
// serial engine's capture at the same cycle (and likewise at the
// adjacent cycle, so the clamp neither skips nor double-ticks the
// boundary).
func TestLookaheadMidSpanCheckpoint(t *testing.T) {
	sc := core.CAWA()
	const workload = "kmeans"
	ref := runReference(t, workload, sc)

	// Probe pass: observe the lookahead engine's boundary cycles in the
	// target launch without perturbing its planning.
	wl, err := workloads.New(workload, testParams)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	g := buildGPU(t, sc, wl, engineVariants[3])
	var boundaries []int64
	ix := 0
	for {
		k, ok := wl.Next()
		if !ok {
			break
		}
		if ix == ref.launchIx {
			g.PerCycle = func(g *gpu.GPU, cycle int64) {
				boundaries = append(boundaries, cycle)
			}
			g.PerCycleWake = func(now int64) int64 { return now + (1 << 40) }
		}
		if _, err := g.Launch(context.Background(), k); err != nil {
			t.Fatalf("launch %s: %v", k.Name, err)
		}
		g.PerCycle, g.PerCycleWake = nil, nil
		ix++
	}
	var at, width int64
	for i := 1; i < len(boundaries); i++ {
		if w := boundaries[i] - boundaries[i-1]; w > width {
			width = w
			at = boundaries[i-1] + w/2
		}
	}
	if width < 3 {
		t.Fatalf("no multi-cycle span observed in launch %d (widest boundary gap %d): the mid-span case is vacuous here", ref.launchIx, width)
	}
	t.Logf("probing cycle %d inside a %d-cycle span", at, width)

	for _, c := range []int64{at, at + 1} {
		sSnap, sHash := snapshotAt(t, workload, sc, engineVariants[0], ref.launchIx, c)
		lSnap, lHash := snapshotAt(t, workload, sc, engineVariants[3], ref.launchIx, c)
		if sSnap.Meta.Cycle != c || lSnap.Meta.Cycle != c {
			t.Errorf("capture cycle drifted: serial %d, lookahead %d, want %d",
				sSnap.Meta.Cycle, lSnap.Meta.Cycle, c)
		}
		if sHash != lHash {
			t.Errorf("mid-span capture at cycle %d diverged from serial:\n lookahead %s\n serial    %s", c, lHash, sHash)
		}
	}
}
