// Package config holds the architectural configuration of the simulated GPU.
//
// The default values reproduce Table 1 of the CAWA paper (ISCA'15): an
// NVIDIA Fermi GTX480 as modeled by GPGPU-sim 3.2.0, with the per-SM L1
// data cache configured as 16-way set-associative.
package config

import (
	"errors"
	"fmt"
)

// Config describes one simulated GPU. The zero value is not usable; start
// from GTX480() or Small() and override fields as needed, then Validate.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// MaxWarpsPerSM bounds concurrent warps resident on one SM.
	MaxWarpsPerSM int
	// MaxBlocksPerSM bounds concurrent thread-blocks resident on one SM.
	MaxBlocksPerSM int
	// SchedulersPerSM is the number of warp schedulers (issue slots) per SM.
	SchedulersPerSM int
	// RegistersPerSM is the register-file capacity in 32-bit registers.
	RegistersPerSM int
	// SharedMemPerSM is the shared-memory capacity in bytes.
	SharedMemPerSM int
	// WarpSize is the SIMD width in threads.
	WarpSize int

	// L1D configures the per-SM L1 data cache.
	L1D CacheConfig
	// L1I configures the per-SM L1 instruction cache.
	L1I CacheConfig
	// L2 configures the shared, banked L2 cache.
	L2 CacheConfig
	// L2Banks is the number of independently ported L2 banks.
	L2Banks int
	// L2Latency is the minimum round-trip latency (cycles) of an L1 miss
	// serviced by the L2 (interconnect + bank access).
	L2Latency int
	// DRAMLatency is the minimum round-trip latency (cycles) of a request
	// serviced by DRAM.
	DRAMLatency int
	// DRAMBandwidth is the number of cycles between consecutive DRAM
	// request completions per channel (inverse bandwidth).
	DRAMBandwidth int
	// DRAMChannels is the number of DRAM channels.
	DRAMChannels int

	// L1HitLatency is the load-to-use latency (cycles) of an L1D hit.
	L1HitLatency int
	// SharedMemLatency is the load-to-use latency of a shared-memory access.
	SharedMemLatency int

	// ALULatency is the latency (cycles) of simple integer/logic operations.
	ALULatency int
	// SFULatency is the latency of special-function operations
	// (div, sqrt, transcendental).
	SFULatency int
	// FPULatency is the latency of floating-point add/mul operations.
	FPULatency int

	// MaxCycles aborts a simulation that exceeds this cycle count
	// (a run-away guard; 0 means no limit).
	MaxCycles int64
}

// CacheConfig describes a single cache.
type CacheConfig struct {
	// Sets is the number of cache sets (power of two).
	Sets int
	// Ways is the associativity.
	Ways int
	// LineBytes is the cache-line size in bytes (power of two).
	LineBytes int
	// MSHRs is the number of miss-status holding registers
	// (maximum distinct outstanding miss lines).
	MSHRs int
	// MSHRTargets is the maximum merged requests per MSHR entry.
	MSHRTargets int
}

// SizeBytes returns the total data capacity of the cache.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// Validate reports whether the cache geometry is well formed.
func (c CacheConfig) Validate() error {
	switch {
	case c.Sets <= 0:
		return fmt.Errorf("config: cache sets %d must be positive", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("config: cache ways %d must be positive", c.Ways)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("config: cache line size %d must be a positive power of two", c.LineBytes)
	case c.MSHRs < 0 || c.MSHRTargets < 0:
		return errors.New("config: MSHR parameters must be non-negative")
	}
	return nil
}

// GTX480 returns the paper's Table 1 configuration: an NVIDIA Fermi GTX480
// with the L1 data cache arranged as 8 sets x 16 ways x 128B = 16KB.
func GTX480() Config {
	return Config{
		Name:            "GTX480",
		NumSMs:          15,
		MaxWarpsPerSM:   48,
		MaxBlocksPerSM:  8,
		SchedulersPerSM: 2,
		RegistersPerSM:  32768,
		SharedMemPerSM:  48 * 1024,
		WarpSize:        32,
		L1D:             CacheConfig{Sets: 8, Ways: 16, LineBytes: 128, MSHRs: 32, MSHRTargets: 8},
		L1I:             CacheConfig{Sets: 4, Ways: 4, LineBytes: 128, MSHRs: 4, MSHRTargets: 4},
		// Table 1 lists the L2 as 64 sets x 16 ways x 6 banks of 128B
		// lines = 768KB; the tag array models all banks together.
		L2:               CacheConfig{Sets: 64 * 6, Ways: 16, LineBytes: 128, MSHRs: 64, MSHRTargets: 8},
		L2Banks:          6,
		L2Latency:        120,
		DRAMLatency:      220,
		DRAMBandwidth:    4,
		DRAMChannels:     6,
		L1HitLatency:     6,
		SharedMemLatency: 6,
		ALULatency:       4,
		SFULatency:       16,
		FPULatency:       6,
		MaxCycles:        200_000_000,
	}
}

// Small returns a reduced configuration (fewer SMs) convenient for unit
// tests and quick experiments. Cache geometry matches GTX480 so per-SM
// cache behaviour is unchanged; only parallel width differs.
func Small() Config {
	c := GTX480()
	c.Name = "GTX480-small"
	c.NumSMs = 2
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case c.MaxWarpsPerSM <= 0:
		return errors.New("config: MaxWarpsPerSM must be positive")
	case c.MaxBlocksPerSM <= 0:
		return errors.New("config: MaxBlocksPerSM must be positive")
	case c.SchedulersPerSM <= 0:
		return errors.New("config: SchedulersPerSM must be positive")
	case c.WarpSize <= 0 || c.WarpSize > 64:
		return fmt.Errorf("config: WarpSize %d out of range (1..64)", c.WarpSize)
	case c.L2Banks <= 0:
		return errors.New("config: L2Banks must be positive")
	case c.DRAMChannels <= 0:
		return errors.New("config: DRAMChannels must be positive")
	case c.L2Latency < 0 || c.DRAMLatency < 0:
		return errors.New("config: latencies must be non-negative")
	case c.ALULatency <= 0 || c.FPULatency <= 0 || c.SFULatency <= 0:
		return errors.New("config: functional-unit latencies must be positive")
	case c.L1HitLatency <= 0:
		return errors.New("config: L1HitLatency must be positive")
	}
	if err := c.L1D.Validate(); err != nil {
		return fmt.Errorf("L1D: %w", err)
	}
	if err := c.L1I.Validate(); err != nil {
		return fmt.Errorf("L1I: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if c.L1D.LineBytes != c.L2.LineBytes {
		return errors.New("config: L1D and L2 line sizes must match")
	}
	return nil
}

// String renders the configuration as the rows of the paper's Table 1.
func (c Config) String() string {
	return fmt.Sprintf(`Architecture              %s
Num. of SMs               %d
Max. # of Warps per SM    %d
Max. # of Blocks per SM   %d
# of Schedulers per SM    %d
# of Registers per SM     %d
Shared Memory             %dKB
L1 Data Cache             %dKB per SM (%d-sets/%d-ways)
L1 Inst Cache             %dKB per SM (%d-sets/%d-ways)
L2 Cache                  %dKB unified cache (%d-sets/%d-ways/%d-banks)
Min. L2 Access Latency    %d cycles
Min. DRAM Access Latency  %d cycles
Warp Size (SIMD Width)    %d threads`,
		c.Name, c.NumSMs, c.MaxWarpsPerSM, c.MaxBlocksPerSM, c.SchedulersPerSM,
		c.RegistersPerSM, c.SharedMemPerSM/1024,
		c.L1D.SizeBytes()/1024, c.L1D.Sets, c.L1D.Ways,
		c.L1I.SizeBytes()/1024, c.L1I.Sets, c.L1I.Ways,
		c.L2.SizeBytes()/1024, c.L2.Sets/c.L2Banks, c.L2.Ways, c.L2Banks,
		c.L2Latency, c.DRAMLatency, c.WarpSize)
}
