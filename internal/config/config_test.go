package config

import (
	"strings"
	"testing"
)

func TestGTX480MatchesTable1(t *testing.T) {
	c := GTX480()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.NumSMs != 15 || c.MaxWarpsPerSM != 48 || c.MaxBlocksPerSM != 8 ||
		c.SchedulersPerSM != 2 || c.RegistersPerSM != 32768 || c.WarpSize != 32 {
		t.Fatalf("core parameters drifted: %+v", c)
	}
	if got := c.L1D.SizeBytes(); got != 16*1024 {
		t.Fatalf("L1D size %d", got)
	}
	if got := c.L1I.SizeBytes(); got != 2*1024 {
		t.Fatalf("L1I size %d", got)
	}
	if got := c.L2.SizeBytes(); got != 768*1024 {
		t.Fatalf("L2 size %d, want 768KB", got)
	}
	if c.L2Latency != 120 || c.DRAMLatency != 220 {
		t.Fatalf("latencies %d/%d", c.L2Latency, c.DRAMLatency)
	}
	if c.SharedMemPerSM != 48*1024 {
		t.Fatalf("shared mem %d", c.SharedMemPerSM)
	}
}

func TestString(t *testing.T) {
	s := GTX480().String()
	for _, want := range []string{
		"15", "48", "16KB per SM (8-sets/16-ways)",
		"768KB unified cache (64-sets/16-ways/6-banks)",
		"120 cycles", "220 cycles", "32 threads",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 rendering missing %q:\n%s", want, s)
		}
	}
}

func TestSmall(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	if c.NumSMs != 2 {
		t.Fatalf("small SMs %d", c.NumSMs)
	}
	// Cache geometry unchanged from GTX480.
	if c.L1D != GTX480().L1D {
		t.Fatal("small config changed the L1D")
	}
}

func TestValidateRejects(t *testing.T) {
	break_ := func(f func(*Config)) Config {
		c := GTX480()
		f(&c)
		return c
	}
	bad := []Config{
		break_(func(c *Config) { c.NumSMs = 0 }),
		break_(func(c *Config) { c.MaxWarpsPerSM = -1 }),
		break_(func(c *Config) { c.MaxBlocksPerSM = 0 }),
		break_(func(c *Config) { c.SchedulersPerSM = 0 }),
		break_(func(c *Config) { c.WarpSize = 0 }),
		break_(func(c *Config) { c.WarpSize = 65 }),
		break_(func(c *Config) { c.L2Banks = 0 }),
		break_(func(c *Config) { c.DRAMChannels = 0 }),
		break_(func(c *Config) { c.ALULatency = 0 }),
		break_(func(c *Config) { c.L1HitLatency = 0 }),
		break_(func(c *Config) { c.L1D.Sets = 0 }),
		break_(func(c *Config) { c.L1D.Ways = 0 }),
		break_(func(c *Config) { c.L1D.LineBytes = 100 }), // not a power of two
		break_(func(c *Config) { c.L1D.LineBytes = 64 }),  // mismatch with L2
		break_(func(c *Config) { c.L2.MSHRs = -1 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCacheConfigSize(t *testing.T) {
	cc := CacheConfig{Sets: 8, Ways: 16, LineBytes: 128}
	if got := cc.SizeBytes(); got != 16384 {
		t.Fatalf("size %d", got)
	}
	// Non-power-of-two set counts are allowed (banked L2).
	cc = CacheConfig{Sets: 384, Ways: 16, LineBytes: 128}
	if err := cc.Validate(); err != nil {
		t.Fatalf("banked geometry rejected: %v", err)
	}
}
