#!/bin/sh
# Tier-1 gate: run this before every merge.
#
#   go vet        static checks
#   go build      everything compiles
#   go test       full unit + experiment smoke suite
#   go test -race the concurrency audit of the parallel simulation
#                 engine: harness (session scheduler, parallel
#                 experiments) and workloads (per-instance RNG) under
#                 the race detector. -short skips the slow sequential
#                 experiment sweep but keeps every parallel-path test
#                 (singleflight, prewarm, parallel-vs-sequential golden).
set -e
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...
echo "== go build =="
go build ./...
echo "== go test =="
go test ./...
echo "== go test -race (harness, workloads) =="
go test -race -short ./internal/harness/... ./internal/workloads/...
echo "ALL CHECKS PASSED"
