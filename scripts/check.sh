#!/bin/sh
# Tier-1 gate: run this before every merge.
#
#   gofmt -l      every file is gofmt-clean
#   go vet        static checks
#   cawalint      whole-module determinism analysis: per-file rules
#                 (no wall clock / global rand / raw map iteration in
#                 simulation packages, goroutines only in sanctioned
#                 packages) plus the interprocedural rules (hot-path
#                 allocations, staged-memsys discipline, domain-safe
#                 synchronization, global writes) against the committed
#                 baseline .cawalint-baseline.json
#   cawadis -lint the twelve workload kernels verify clean
#   go build      everything compiles
#   go test       full unit + experiment smoke suite
#   go test -race the concurrency audit of the parallel simulation
#                 engine: harness (session scheduler, parallel
#                 experiments) and workloads (per-instance RNG) under
#                 the race detector. -short skips the slow sequential
#                 experiment sweep but keeps every parallel-path test
#                 (singleflight, prewarm, parallel-vs-sequential golden).
#   GOMAXPROCS race matrix: the parallel per-SM engine's tests (epoch
#                 barrier, staged commit, lookahead batching, span-fill
#                 delivery, cancellation, worker budget,
#                 engine-equivalence, checkpoint round-trips across the
#                 workload catalog) re-run under -race at GOMAXPROCS=2
#                 (forced goroutine multiplexing — exercises the barrier
#                 park path) and GOMAXPROCS=8 (real interleaving on CI's
#                 multi-core runners).
#   bench delta   shell-level test of scripts/bench.sh's -delta gating
#                 (flat-name fallback only gates at matching GOMAXPROCS)
set -e
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "== go vet =="
go vet ./...
echo "== cawalint (whole-module, interprocedural) =="
go run ./cmd/cawalint -interproc -baseline .cawalint-baseline.json
echo "== cawadis -lint (workload kernels) =="
go run ./cmd/cawadis -lint -workload all
echo "== go build =="
go build ./...
echo "== go test =="
go test ./...
echo "== go test -race (harness, workloads) =="
go test -race -short ./internal/harness/... ./internal/workloads/...
echo "== go test -race parallel engine (GOMAXPROCS=2, GOMAXPROCS=8) =="
for procs in 2 8; do
    GOMAXPROCS=$procs go test -race -short \
        -run 'TestParallel|TestDomain|TestStaged|TestStaging|TestLookahead|TestSpanFill|TestSessionSharedWorkerBudget|TestEngineEquivalenceMatrix|TestRoundTrip' \
        ./internal/gpu/... ./internal/memsys/... ./internal/harness/... ./internal/checkpoint/...
done
echo "== bench.sh delta logic =="
./scripts/test_bench_delta.sh
echo "ALL CHECKS PASSED"
