#!/bin/sh
# Regenerates the measured tables recorded in EXPERIMENTS.md.
#
#   experiments_raw.txt          scale 1   fig1, fig10, abl-*
#   experiments_headline.txt     scale 1   fig9, fig13, fig14, sec552
#   experiments_scale05.txt      scale 0.5 remaining figures
#   experiments_fig9_scale4.json scale 4   fig9, fig10 (sampled 2+4)
#
# The full suite at scale 1 (`cawabench -all`) takes about an hour on a
# single core; this script reproduces the documented subsets. The
# scale-4 sweep alone is ~30 minutes even with sampling.
set -e
go build -o /tmp/cawabench ./cmd/cawabench
/tmp/cawabench -exp fig1,fig10,abl-cpl,abl-dynpart,abl-greedy,abl-partition,abl-signature \
    -scale 1 | tee experiments_raw.txt
/tmp/cawabench -exp fig9,fig13,fig14,sec552 -scale 1 | tee experiments_headline.txt
/tmp/cawabench -exp fig9,fig13,fig11,fig14,fig15,sec552,fig3,fig4,ext-ccws \
    -scale 0.5 | tee experiments_scale05.txt
/tmp/cawabench -exp fig2a,fig2b,fig2c,fig8,fig12,fig16,fig17,tab1,tab2 \
    -scale 0.5 | tee -a experiments_scale05.txt
/tmp/cawabench -exp fig9,fig10 -scale 4 -sample-warmup 2 -sample-interval 4 \
    -json | tee experiments_fig9_scale4.json
