#!/bin/sh
# Shell-level test of bench.sh's -delta gating logic, driven through the
# -delta-only mode (gate an existing report, skip the benchmarks).
#
# The regression this pins: the flat-name fallback for pre-split
# baselines used to compare sim_cycles_s across reports captured at
# different GOMAXPROCS — a cross-machine comparison that can fail (or
# pass) on hardware, not on commits. The fallback must only gate when
# the GOMAXPROCS stamps match, and skip with a message otherwise.
set -e
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fails=0
fail() {
    echo "test_bench_delta: FAIL: $1" >&2
    fails=$((fails + 1))
}

# report <file> <rows...>: write a minimal BENCH report.
report() {
    f=$1
    shift
    {
        printf '{\n  "date": "2026-01-01",\n  "go": "gotest",\n  "benchtime": "1x",\n  "gomaxprocs": 8,\n  "benchmarks": [\n'
        sep=""
        for row in "$@"; do
            printf '%b    %s' "$sep" "$row"
            sep=',\n'
        done
        printf '\n  ]\n}\n'
    } > "$f"
}

serial_row() { # gomaxprocs cycles_s
    echo "{\"name\": \"SimulatorThroughput/serial-2sm\", \"gomaxprocs\": $1, \"engine\": \"serial\", \"iterations\": 10, \"sim_cycles_s\": $2}"
}
flat_row() { # gomaxprocs cycles_s
    echo "{\"name\": \"SimulatorThroughput\", \"gomaxprocs\": $1, \"engine\": \"serial\", \"iterations\": 10, \"sim_cycles_s\": $2}"
}
smpar_row() { # gomaxprocs cycles_s
    echo "{\"name\": \"SimulatorThroughput/smpar-15sm\", \"gomaxprocs\": $1, \"engine\": \"parallel\", \"iterations\": 10, \"sim_cycles_s\": $2}"
}

new=$tmp/new.json
base=$tmp/base.json

# 1. Flat-name baseline at MATCHING GOMAXPROCS still gates: a >25%
#    regression must fail.
report "$new" "$(serial_row 8 700000)"
report "$base" "$(flat_row 8 1000000)"
if BASELINE=$base ./scripts/bench.sh -delta-only "$new" >"$tmp/out1" 2>&1; then
    fail "matched-procs flat fallback did not catch a 30% regression"
fi
grep -q "delta: FAIL" "$tmp/out1" || fail "expected FAIL message, got: $(cat "$tmp/out1")"

# 2. Flat-name baseline at matching GOMAXPROCS passes within bounds.
report "$new" "$(serial_row 8 950000)"
if ! BASELINE=$base ./scripts/bench.sh -delta-only "$new" >"$tmp/out2" 2>&1; then
    fail "matched-procs flat fallback failed a -5% run: $(cat "$tmp/out2")"
fi
grep -q "delta: serial sim_cycles_s" "$tmp/out2" || fail "expected serial gate line, got: $(cat "$tmp/out2")"

# 3. Flat-name baseline at DIFFERENT GOMAXPROCS must be skipped, not
#    gated: the same 30% drop that failed case 1 is now a cross-machine
#    comparison and must pass with a skip message.
report "$new" "$(serial_row 8 700000)"
report "$base" "$(flat_row 4 1000000)"
if ! BASELINE=$base ./scripts/bench.sh -delta-only "$new" >"$tmp/out3" 2>&1; then
    fail "mismatched-procs flat fallback gated a cross-machine comparison: $(cat "$tmp/out3")"
fi
grep -q "delta: serial skipped" "$tmp/out3" || fail "expected skip message, got: $(cat "$tmp/out3")"

# 4. Split baselines are unaffected: serial-2sm rows gate directly.
report "$base" "$(serial_row 4 1000000)"
if BASELINE=$base ./scripts/bench.sh -delta-only "$new" >"$tmp/out4" 2>&1; then
    fail "split-baseline serial gate missed a 30% regression"
fi

# 5. Parallel rows: mismatched GOMAXPROCS skip (pre-existing behavior,
#    pinned here alongside the serial fix).
report "$new" "$(serial_row 8 1000000)" "$(smpar_row 8 5000000)"
report "$base" "$(serial_row 8 1000000)" "$(smpar_row 4 9000000)"
if ! BASELINE=$base ./scripts/bench.sh -delta-only "$new" >"$tmp/out5" 2>&1; then
    fail "mismatched-procs parallel rows gated: $(cat "$tmp/out5")"
fi
grep -q "delta: smpar skipped" "$tmp/out5" || fail "expected smpar skip message, got: $(cat "$tmp/out5")"

if [ "$fails" != 0 ]; then
    echo "test_bench_delta: $fails failure(s)" >&2
    exit 1
fi
echo "test_bench_delta: all cases passed"
