#!/bin/sh
# Benchmark snapshot: run the headline throughput benchmarks and write a
# machine-readable JSON report for regression tracking.
#
#   scripts/bench.sh [outfile] [bench-regexp]
#
# Defaults: outfile BENCH_<date>.json in the repo root; the benchmark
# set covers raw simulator throughput, the parallel sweep path, and the
# two heaviest experiment regenerations (fig9, fig13). BENCHTIME
# overrides -benchtime (default 1s; CI smoke uses 1x).
#
# Each benchmark line becomes one JSON object: iterations plus every
# reported metric, with units mangled to identifier form (ns/op ->
# ns_op, sim_cycles/s -> sim_cycles_s, B/op -> B_op, allocs/op ->
# allocs_op).
set -e
cd "$(dirname "$0")/.."

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-'BenchmarkSimulatorThroughput|BenchmarkParallelSweep|BenchmarkFig9Performance|BenchmarkFig13SchedulerBreakdown'}
benchtime=${BENCHTIME:-1s}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ($benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

awk -v date="$(date +%F)" -v gover="$(go env GOVERSION)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", date, gover, benchtime
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
    sep = ",\n"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"
