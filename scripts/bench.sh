#!/bin/sh
# Benchmark snapshot: run the headline throughput benchmarks and write a
# machine-readable JSON report for regression tracking.
#
#   scripts/bench.sh [-delta] [outfile] [bench-regexp]
#
# Defaults: outfile BENCH_<date>.json in the repo root; the benchmark
# set covers raw simulator throughput, the parallel sweep path, and the
# two heaviest experiment regenerations (fig9, fig13). BENCHTIME
# overrides -benchtime (default 1s; CI smoke uses 1x).
#
# Each benchmark line becomes one JSON object: iterations plus every
# reported metric, with units mangled to identifier form (ns/op ->
# ns_op, sim_cycles/s -> sim_cycles_s, B/op -> B_op, allocs/op ->
# allocs_op).
#
# Delta mode (-delta): after writing the report, compare the
# SimulatorThroughput sim_cycles_s against the committed baseline (the
# newest BENCH_*.json in the repo root, or $BASELINE) and exit non-zero
# on a regression of more than 25% — the CI bench-smoke gate.
set -e
cd "$(dirname "$0")/.."

delta=0
if [ "${1:-}" = "-delta" ]; then
    delta=1
    shift
fi

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-'BenchmarkSimulatorThroughput|BenchmarkParallelSweep|BenchmarkFig9Performance|BenchmarkFig13SchedulerBreakdown'}
benchtime=${BENCHTIME:-1s}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ($benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

awk -v date="$(date +%F)" -v gover="$(go env GOVERSION)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", date, gover, benchtime
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    printf "%s    {\"name\": \"%s\", \"iterations\": %s", sep, name, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
    sep = ",\n"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"

if [ "$delta" = 1 ]; then
    # Newest committed baseline unless the caller pinned one. The
    # just-written outfile must not shadow the baseline.
    base=${BASELINE:-$(ls BENCH_*.json 2>/dev/null | grep -v "^$(basename "$out")\$" | sort | tail -1)}
    if [ -z "$base" ] || [ ! -f "$base" ]; then
        echo "delta: no committed BENCH_*.json baseline found" >&2
        exit 1
    fi
    # Extract one numeric metric of one benchmark from a report.
    extract() {
        awk -v name="$2" -v metric="$3" '
            $0 ~ "\"name\": \"" name "\"" && match($0, "\"" metric "\": *[0-9.eE+-]+") {
                v = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", v)
                print v
                exit
            }' "$1"
    }
    new=$(extract "$out" SimulatorThroughput sim_cycles_s)
    old=$(extract "$base" SimulatorThroughput sim_cycles_s)
    if [ -z "$new" ] || [ -z "$old" ]; then
        echo "delta: sim_cycles_s missing (new='$new' baseline='$old' from $base)" >&2
        exit 1
    fi
    awk -v new="$new" -v old="$old" -v base="$base" '
        BEGIN {
            pct = (new / old - 1) * 100
            printf "delta: sim_cycles_s %.0f vs baseline %.0f (%s): %+.1f%%\n", new, old, base, pct
            if (new < old * 0.75) {
                printf "delta: FAIL — more than 25%% below baseline\n"
                exit 1
            }
        }'
fi
