#!/bin/sh
# Benchmark snapshot: run the headline throughput benchmarks and write a
# machine-readable JSON report for regression tracking.
#
#   scripts/bench.sh [-delta] [outfile] [bench-regexp]
#
# Defaults: outfile BENCH_<date>.json in the repo root; the benchmark
# set covers raw simulator throughput, the parallel sweep path, and the
# two heaviest experiment regenerations (fig9, fig13). BENCHTIME
# overrides -benchtime (default 1s; CI smoke uses 1x).
#
# Each benchmark line becomes one JSON object: iterations plus every
# reported metric, with units mangled to identifier form (ns/op ->
# ns_op, sim_cycles/s -> sim_cycles_s, B/op -> B_op, allocs/op ->
# allocs_op), plus the GOMAXPROCS the benchmark ran at (go test's -N
# name suffix) and the engine it exercised ("parallel" for the smpar
# sub-benchmarks, "serial" otherwise). Throughput on the parallel
# engine scales with cores, so reports are only comparable at matching
# GOMAXPROCS.
#
# The smpar-prof-15sm sub-benchmark runs the parallel engine with the
# self-profiler attached, so the report also carries barrier_wait_frac
# (fraction of shard wall-clock spent waiting at the epoch barrier),
# shard_spread (max/mean per-shard compute) and barriers_per_kcycle
# (epochs per simulated kilocycle). smpar-la-15sm is the same profiled
# run under the lookahead engine; its barriers_per_kcycle against
# smpar-prof-15sm's is the amortization headline. The delta gate
# ignores the profile summaries (profiled throughput is not the
# headline number); they are echoed after the report is written.
#
# Delta mode (-delta): after writing the report, compare the serial
# SimulatorThroughput sim_cycles_s against the committed baseline (the
# newest BENCH_*.json in the repo root, or $BASELINE) and exit non-zero
# on a regression of more than 25% — the CI bench-smoke gate. The
# parallel-engine numbers (smpar-15sm, smpar-la-15sm) are additionally
# compared when the baseline recorded them at the same GOMAXPROCS;
# otherwise they are reported and skipped (a 4-core baseline says
# nothing about a 16-core run). The lookahead row also gates
# barriers_per_kcycle: more than 25% *more* barriers per kilocycle than
# the baseline means the horizon planner lost amortization, which is a
# regression even if wall-clock noise hides it.
set -e
cd "$(dirname "$0")/.."

delta=0
run=1
case "${1:-}" in
-delta)
    delta=1
    shift
    ;;
-delta-only)
    # Gate an existing report against the baseline without re-running
    # the benchmarks (used by the delta-logic shell test).
    delta=1
    run=0
    shift
    ;;
esac

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-'BenchmarkSimulatorThroughput|BenchmarkParallelSweep|BenchmarkFig9Performance|BenchmarkFig13SchedulerBreakdown'}
benchtime=${BENCHTIME:-1s}

if [ "$run" = 1 ]; then

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench ($benchtime) =="
go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" . | tee "$raw"

awk -v date="$(date +%F)" -v gover="$(go env GOVERSION)" -v benchtime="$benchtime" \
    -v hostprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [\n", date, gover, benchtime, hostprocs
}
/^Benchmark/ {
    name = $1
    # go test suffixes every benchmark with -GOMAXPROCS; lift it into a
    # field before stripping (absent only at GOMAXPROCS=1, where go
    # test prints the bare name).
    procs = 1
    if (match(name, /-[0-9]+$/)) procs = substr(name, RSTART + 1, RLENGTH - 1)
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    engine = (name ~ /smpar/) ? "parallel" : "serial"
    printf "%s    {\"name\": \"%s\", \"gomaxprocs\": %s, \"engine\": \"%s\", \"iterations\": %s", \
        sep, name, procs, engine, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
    sep = ",\n"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

echo "wrote $out"

fi # run

# Extract one numeric metric of one benchmark from a report.
extract() {
    awk -v name="$2" -v metric="$3" '
        $0 ~ "\"name\": \"" name "\"" && match($0, "\"" metric "\": *[0-9.eE+-]+") {
            v = substr($0, RSTART, RLENGTH)
            sub(/.*: */, "", v)
            print v
            exit
        }' "$1"
}

# Shard-imbalance summary from the profiled parallel runs, when the
# pattern included them.
bwf=$(extract "$out" "SimulatorThroughput/smpar-prof-15sm" barrier_wait_frac)
spread=$(extract "$out" "SimulatorThroughput/smpar-prof-15sm" shard_spread)
bpk=$(extract "$out" "SimulatorThroughput/smpar-prof-15sm" barriers_per_kcycle)
if [ -n "$bwf" ]; then
    echo "engine profile: barrier_wait_frac=$bwf shard_spread=$spread barriers_per_kcycle=$bpk"
fi
labwf=$(extract "$out" "SimulatorThroughput/smpar-la-15sm" barrier_wait_frac)
labpk=$(extract "$out" "SimulatorThroughput/smpar-la-15sm" barriers_per_kcycle)
if [ -n "$labpk" ]; then
    echo "lookahead profile: barrier_wait_frac=$labwf barriers_per_kcycle=$labpk"
fi

if [ "$delta" = 1 ]; then
    # Newest committed baseline unless the caller pinned one. The
    # just-written outfile must not shadow the baseline.
    base=${BASELINE:-$(ls BENCH_*.json 2>/dev/null | grep -v "^$(basename "$out")\$" | sort | tail -1)}
    if [ -z "$base" ] || [ ! -f "$base" ]; then
        echo "delta: no committed BENCH_*.json baseline found" >&2
        exit 1
    fi
    # Serial headline: the serial-2sm sub-benchmark, falling back to the
    # historical flat name for pre-split baselines. Serial throughput is
    # mostly GOMAXPROCS-independent, but the flat-name rows predate the
    # per-row stamps' engine split, so a flat baseline is only trusted
    # when its GOMAXPROCS stamp matches the current serial row's — a
    # 4-core laptop baseline gating a 16-core CI run (or vice versa)
    # compares different machines, not different commits.
    new=$(extract "$out" "SimulatorThroughput/serial-2sm" sim_cycles_s)
    old=$(extract "$base" "SimulatorThroughput/serial-2sm" sim_cycles_s)
    serial_skip=0
    if [ -z "$old" ]; then
        flat=$(extract "$base" SimulatorThroughput sim_cycles_s)
        if [ -n "$flat" ]; then
            fprocs_old=$(extract "$base" SimulatorThroughput gomaxprocs)
            fprocs_new=$(extract "$out" "SimulatorThroughput/serial-2sm" gomaxprocs)
            if [ -n "$fprocs_old" ] && [ "$fprocs_old" = "$fprocs_new" ]; then
                old=$flat
            else
                echo "delta: serial skipped — flat-name baseline GOMAXPROCS ${fprocs_old:-unknown} vs ${fprocs_new:-unknown} ($base) are not comparable"
                serial_skip=1
            fi
        fi
    fi
    if [ "$serial_skip" = 0 ]; then
        if [ -z "$new" ] || [ -z "$old" ]; then
            echo "delta: serial sim_cycles_s missing (new='$new' baseline='$old' from $base)" >&2
            exit 1
        fi
        awk -v new="$new" -v old="$old" -v base="$base" '
            BEGIN {
                pct = (new / old - 1) * 100
                printf "delta: serial sim_cycles_s %.0f vs baseline %.0f (%s): %+.1f%%\n", new, old, base, pct
                if (new < old * 0.75) {
                    printf "delta: FAIL — more than 25%% below baseline\n"
                    exit 1
                }
            }'
    fi
    # Parallel engines: only meaningful against a baseline captured at
    # the same GOMAXPROCS — domain-goroutine throughput scales with
    # cores, so cross-machine comparisons are noise, not regressions.
    # gate_parallel <sub-benchmark> <label>: compare sim_cycles_s.
    gate_parallel() {
        pnew=$(extract "$out" "SimulatorThroughput/$1" sim_cycles_s)
        pold=$(extract "$base" "SimulatorThroughput/$1" sim_cycles_s)
        if [ -n "$pnew" ] && [ -n "$pold" ]; then
            procs_new=$(extract "$out" "SimulatorThroughput/$1" gomaxprocs)
            procs_old=$(extract "$base" "SimulatorThroughput/$1" gomaxprocs)
            if [ "$procs_new" = "$procs_old" ]; then
                awk -v new="$pnew" -v old="$pold" -v base="$base" -v procs="$procs_new" -v label="$2" '
                    BEGIN {
                        pct = (new / old - 1) * 100
                        printf "delta: %s sim_cycles_s %.0f vs baseline %.0f (%s, GOMAXPROCS=%s): %+.1f%%\n", label, new, old, base, procs, pct
                        if (new < old * 0.75) {
                            printf "delta: FAIL — more than 25%% below baseline\n"
                            exit 1
                        }
                    }'
            else
                echo "delta: $2 skipped — GOMAXPROCS $procs_new vs baseline $procs_old ($base) are not comparable"
                procs_new=
            fi
        elif [ -n "$pnew" ]; then
            echo "delta: $2 skipped — baseline $base predates this benchmark"
        fi
    }
    gate_parallel smpar-15sm smpar
    gate_parallel smpar-la-15sm smpar-la
    # The lookahead engine's amortization itself: barriers_per_kcycle
    # rising means the horizon planner batches less. Deterministic per
    # design point, but cheap to scope to the same matched-GOMAXPROCS
    # rows the throughput gate just validated (procs_new survives from
    # the smpar-la gate_parallel call above iff the rows matched).
    if [ -n "$procs_new" ]; then
        bnew=$(extract "$out" "SimulatorThroughput/smpar-la-15sm" barriers_per_kcycle)
        bold=$(extract "$base" "SimulatorThroughput/smpar-la-15sm" barriers_per_kcycle)
        if [ -n "$bnew" ] && [ -n "$bold" ]; then
            awk -v new="$bnew" -v old="$bold" -v base="$base" '
                BEGIN {
                    pct = (new / old - 1) * 100
                    printf "delta: smpar-la barriers_per_kcycle %.2f vs baseline %.2f (%s): %+.1f%%\n", new, old, base, pct
                    if (new > old * 1.25) {
                        printf "delta: FAIL — more than 25%% above baseline (lost amortization)\n"
                        exit 1
                    }
                }'
        fi
    fi
fi
