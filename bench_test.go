package cawa

// Benchmark harness: one testing.B benchmark per paper table/figure
// (see the per-experiment index in DESIGN.md). Each benchmark runs the
// corresponding experiment end-to-end on a reduced configuration
// (2 SMs, quarter-scale inputs) so the whole suite finishes in
// minutes; `cmd/cawabench -exp <id>` regenerates the full-size tables
// recorded in EXPERIMENTS.md.
//
// Benchmarks report simulated cycles per wall second where meaningful,
// plus experiment-specific headline metrics via b.ReportMetric.

import (
	"runtime"
	"strconv"
	"testing"

	"cawa/internal/harness"
	"cawa/internal/obs/perf"
)

func benchSession() *Session {
	return NewSession(SmallConfig(), Params{Scale: 0.25, Seed: 7}).
		SetWorkers(runtime.GOMAXPROCS(0))
}

// runExp is the common driver: run the experiment b.N times (sessions
// cache within an iteration but not across, keeping work honest).
func runExp(b *testing.B, id string) *Table {
	b.Helper()
	var tbl *Table
	for i := 0; i < b.N; i++ {
		s := benchSession()
		var err error
		tbl, err = RunExperiment(id, s)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tbl
}

// metric extracts a numeric cell for ReportMetric; the table formats
// numbers itself, so parse back.
func metric(tbl *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(tbl.Value(row, col), 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkFig1Disparity(b *testing.B) {
	tbl := runExp(b, "fig1")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 0), "avg_disparity")
}

func BenchmarkFig2aImbalance(b *testing.B) { runExp(b, "fig2a") }
func BenchmarkFig2bBranch(b *testing.B)    { runExp(b, "fig2b") }
func BenchmarkFig2cMemory(b *testing.B)    { runExp(b, "fig2c") }

func BenchmarkFig3Reuse(b *testing.B) {
	tbl := runExp(b, "fig3")
	b.ReportMetric(metric(tbl, 1, 0), "frac_evicted_before_reuse")
}

func BenchmarkFig4SchedDelay(b *testing.B) { runExp(b, "fig4") }
func BenchmarkFig8PCReuse(b *testing.B)    { runExp(b, "fig8") }

func BenchmarkFig9Performance(b *testing.B) {
	tbl := runExp(b, "fig9")
	// GMEAN(sens) row: columns 2lvl, gto, cawa.
	b.ReportMetric(metric(tbl, tbl.Rows()-2, 2), "cawa_gmean_sens_speedup")
}

func BenchmarkFig10MPKI(b *testing.B) { runExp(b, "fig10") }

func BenchmarkFig11CPLAccuracy(b *testing.B) {
	tbl := runExp(b, "fig11")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 0), "avg_accuracy")
}

func BenchmarkFig12PriorityTimeline(b *testing.B) { runExp(b, "fig12") }

func BenchmarkFig13SchedulerBreakdown(b *testing.B) {
	tbl := runExp(b, "fig13")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 2), "cawa_gmean_speedup")
}

func BenchmarkFig14CriticalHitRate(b *testing.B) {
	tbl := runExp(b, "fig14")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 1), "cawa_norm_hit_rate")
}

func BenchmarkFig15ZeroReuse(b *testing.B) {
	tbl := runExp(b, "fig15")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 0), "baseline_zero_reuse")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 1), "cawa_zero_reuse")
}

func BenchmarkFig16CACPMPKI(b *testing.B) { runExp(b, "fig16") }
func BenchmarkFig17CACPIPC(b *testing.B)  { runExp(b, "fig17") }

func BenchmarkTable1Config(b *testing.B)     { runExp(b, "tab1") }
func BenchmarkTable2Benchmarks(b *testing.B) { runExp(b, "tab2") }

func BenchmarkSec552CPLonGTO(b *testing.B) {
	tbl := runExp(b, "sec552")
	b.ReportMetric(metric(tbl, tbl.Rows()-1, 0), "gcaws_vs_gto_gmean")
}

// Ablation benches for the design decisions called out in DESIGN.md.

func BenchmarkAblationCPLTerms(b *testing.B)  { runExp(b, "abl-cpl") }
func BenchmarkAblationGreedy(b *testing.B)    { runExp(b, "abl-greedy") }
func BenchmarkAblationPartition(b *testing.B) { runExp(b, "abl-partition") }
func BenchmarkAblationSignature(b *testing.B) { runExp(b, "abl-signature") }
func BenchmarkAblationDynPart(b *testing.B)   { runExp(b, "abl-dynpart") }
func BenchmarkExtensionCCWS(b *testing.B)     { runExp(b, "ext-ccws") }

// Parallel sweep throughput: a small run matrix prewarmed across the
// worker pool — the fan-out path cawabench -exp all takes.
func BenchmarkParallelSweep(b *testing.B) {
	keys := []RunKey{
		{App: "bfs", System: Baseline()},
		{App: "bfs", System: SystemConfig{Scheduler: "gto"}},
		{App: "bfs", System: CAWA()},
		{App: "kmeans", System: Baseline()},
		{App: "kmeans", System: SystemConfig{Scheduler: "gto"}},
		{App: "kmeans", System: CAWA()},
	}
	for i := 0; i < b.N; i++ {
		s := NewSession(SmallConfig(), Params{Scale: 0.125, Seed: 7}).
			SetWorkers(runtime.GOMAXPROCS(0))
		if err := s.Prewarm(keys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// Raw simulator throughput: simulated cycles per second on a
// cache-thrashing workload (kmeans) under the full CAWA design.
//
// Three sub-benchmarks separate the engine dimensions:
//
//	serial-2sm   the historical headline number (SmallConfig, serial) —
//	             scripts/bench.sh -delta tracks this against committed
//	             baselines, so its body must stay equivalent
//	serial-15sm  the paper's GTX480 on the serial engine — the
//	             denominator of the parallel speedup
//	smpar-15sm   GTX480 on the parallel per-SM engine with one domain
//	             goroutine per available core — speedup is
//	             smpar-15sm / serial-15sm at matching GOMAXPROCS
//
//	smpar-prof-15sm  the same parallel run with the engine self-profiler
//	             attached (harness.NewWallProfiler): reports
//	             barrier_wait_frac (fraction of shard wall-clock spent
//	             waiting at the epoch barrier), shard_spread (max/mean
//	             per-shard compute) and barriers_per_kcycle (epochs per
//	             simulated kilocycle on the one-cycle-epoch engine) so
//	             scripts/bench.sh can fold shard-imbalance into
//	             BENCH_*.json. Kept separate from smpar-15sm so the
//	             delta gate tracks an unprofiled run.
//
//	smpar-la-15sm  the profiled parallel run with -lookahead: multi-cycle
//	             safe-horizon epochs. Its barriers_per_kcycle against
//	             smpar-prof-15sm's is the amortization headline (the
//	             lookahead engine targets a >= 5x reduction); its
//	             sim_cycles/s against smpar-15sm's is the wall-clock win.
//
// The go-test name suffix (-N) records GOMAXPROCS; scripts/bench.sh
// extracts it into the JSON report so deltas only compare like with
// like.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench := func(b *testing.B, cfg Config, smWorkers int) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := RunWith(RunOptions{
				Workload: "kmeans", Params: Params{Scale: 0.125, Seed: 7},
				System: CAWA(), Config: cfg, SMWorkers: smWorkers,
			})
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Agg.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
	}
	b.Run("serial-2sm", func(b *testing.B) { bench(b, SmallConfig(), 0) })
	b.Run("serial-15sm", func(b *testing.B) { bench(b, GTX480(), 0) })
	b.Run("smpar-15sm", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2 // keep the parallel engine engaged on 1-core hosts
		}
		bench(b, GTX480(), workers)
	})
	profiled := func(b *testing.B, lookahead bool) {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		prof := harness.NewWallProfiler(perf.DefaultSampleEvery)
		var cycles int64
		for i := 0; i < b.N; i++ {
			res, err := RunWith(RunOptions{
				Workload: "kmeans", Params: Params{Scale: 0.125, Seed: 7},
				System: CAWA(), Config: GTX480(), SMWorkers: workers,
				Profiler: prof, Lookahead: lookahead,
			})
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.Agg.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
		rep := prof.Report()
		b.ReportMetric(rep.BarrierWaitFrac(), "barrier_wait_frac")
		b.ReportMetric(rep.Spread(), "shard_spread")
		b.ReportMetric(rep.BarriersPerKcycle, "barriers_per_kcycle")
	}
	b.Run("smpar-prof-15sm", func(b *testing.B) { profiled(b, false) })
	b.Run("smpar-la-15sm", func(b *testing.B) { profiled(b, true) })
}
