package cawa

import "testing"

// TestPublicAPI exercises the façade end to end on a reduced
// configuration: run a workload on the baseline and the full CAWA
// design point, and regenerate one experiment table.
func TestPublicAPI(t *testing.T) {
	p := Params{Scale: 0.1, Seed: 3}
	base, err := Run("bfs", p, Baseline(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cawaRes, err := Run("bfs", p, CAWA(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if base.Agg.Cycles <= 0 || cawaRes.Agg.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if base.Agg.IPC() <= 0 {
		t.Fatal("zero IPC")
	}

	if len(Workloads()) < 12 {
		t.Fatalf("only %d workloads registered", len(Workloads()))
	}
	if len(ExperimentIDs()) < 19 {
		t.Fatalf("only %d experiments registered", len(ExperimentIDs()))
	}

	s := NewSession(SmallConfig(), p)
	tbl, err := RunExperiment("tab2", s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 12 {
		t.Fatalf("tab2 rows %d", tbl.Rows())
	}
}

func TestConfigsExposed(t *testing.T) {
	if GTX480().NumSMs != 15 || SmallConfig().NumSMs != 2 {
		t.Fatal("config presets drifted")
	}
	if CAWA().Scheduler != "gcaws" || !CAWA().CACP || !CAWA().CPL {
		t.Fatal("CAWA design point drifted")
	}
	if Baseline().Scheduler != "lrr" {
		t.Fatal("baseline drifted")
	}
}
