// custom_kernel shows the text-assembly and tracing APIs: a kernel
// written in mini-ISA assembly is parsed, launched on the simulated
// GPU with an execution recorder attached, and profiled for its
// hottest (stalliest) program counters.
package main

import (
	"context"
	"fmt"
	"log"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
	"cawa/internal/sm"
	"cawa/internal/trace"
)

// A histogram kernel in textual mini-ISA assembly: each thread walks a
// private slice of the input and bins values into a private histogram
// region (no data races; the host reduces).
const histogramAsm = `
// params: [0]=input [1]=hist [2]=perThread [3]=bins
    sreg   r0, %gtid
    param  r1, 2            // per-thread element count
    mul    r2, r0, r1       // my first element index
    param  r3, 0
    param  r4, 1
    param  r5, 3            // bins
    mul    r6, r0, r5
    mul    r6, r6, 8
    add    r6, r6, r4       // my private histogram base
    movi   r7, 0            // i
loop:
    set.ge r8, r7, r1
    cbra   r8, @done
    add    r9, r2, r7
    mul    r9, r9, 8
    add    r9, r9, r3
    ld.global r10, [r9+0]   // v = input[first+i]
    rem    r10, r10, r5     // bin = v % bins
    mul    r10, r10, 8
    add    r10, r10, r6
    ld.global r11, [r10+0]
    add    r11, r11, 1
    st.global [r10+0], r11  // hist[bin]++
    add    r7, r7, 1
    bra    @loop
done:
    exit
`

func main() {
	prog, err := isa.Parse("histogram", histogramAsm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Disasm())

	const (
		threads   = 2048
		perThread = 16
		bins      = 8
		blockDim  = 256
	)
	mem := memory.New(1 << 24)
	input := mem.Alloc(threads * perThread)
	hist := mem.Alloc(threads * bins)
	for i := 0; i < threads*perThread; i++ {
		mem.Store(input+int64(i)*8, int64(i*2654435761)>>8&0x7FFFFFFF)
	}
	kernel := &simt.Kernel{
		Name:     "histogram",
		Program:  prog,
		GridDim:  threads / blockDim,
		BlockDim: blockDim,
		Params:   []int64{input, hist, perThread, bins},
	}

	var recorders []*trace.Recorder
	g, err := gpu.New(gpu.Options{
		Config: config.GTX480(),
		Memory: mem,
		Criticality: func() sm.CriticalityProvider {
			r := trace.NewRecorder(core.NewCPL(), 1<<16)
			recorders = append(recorders, r)
			return r
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	launch, err := g.Launch(context.Background(), kernel)
	if err != nil {
		log.Fatal(err)
	}

	// Host-side reduction + sanity check.
	total := int64(0)
	counts := make([]int64, bins)
	for t := 0; t < threads; t++ {
		for b := 0; b < bins; b++ {
			v := mem.Load(hist + int64(t*bins+b)*8)
			counts[b] += v
			total += v
		}
	}
	if total != threads*perThread {
		log.Fatalf("histogram total %d, want %d", total, threads*perThread)
	}

	fmt.Printf("\n%d cycles, IPC %.1f, coalescing %.2f txn/mem-instr\n",
		launch.Cycles, launch.IPC(), launch.CoalescingFactor())
	fmt.Printf("bins: %v (total %d)\n", counts, total)

	fmt.Println("\nhottest PCs on SM 0 (by accumulated stall):")
	for i, p := range recorders[0].HotPCs() {
		if i == 5 {
			break
		}
		fmt.Printf("  pc=%-3d %-10s issues=%-7d stall=%d\n", p.PC, p.Op, p.Issues, p.Stall)
	}
}
