// scheduler_compare sweeps every registered workload across the five
// warp schedulers (plus the full CAWA design point) and prints an IPC
// speedup matrix over the round-robin baseline — a compact version of
// the paper's Figure 9 that also covers the oracle CAWS scheduler.
package main

import (
	"flag"
	"fmt"
	"log"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.5, "workload size multiplier")
	flag.Parse()

	cfg := config.GTX480()
	session := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: 1})

	points := []struct {
		name string
		sc   core.SystemConfig
	}{
		{"2lvl", core.SystemConfig{Scheduler: "2lvl"}},
		{"gto", core.SystemConfig{Scheduler: "gto"}},
		{"caws*", core.SystemConfig{Scheduler: "caws"}}, // oracle filled per app
		{"gcaws", core.SystemConfig{Scheduler: "gcaws", CPL: true}},
		{"cawa", core.CAWA()},
	}

	fmt.Printf("%-14s", "app")
	for _, pt := range points {
		fmt.Printf("  %7s", pt.name)
	}
	fmt.Println("   (speedup over rr)")

	for _, app := range harness.PaperApps {
		base, err := session.Baseline(app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", app)
		for _, pt := range points {
			sc := pt.sc
			if sc.Scheduler == "caws" {
				oracle, err := session.OracleFor(app)
				if err != nil {
					log.Fatal(err)
				}
				sc.Oracle = oracle
			}
			r, err := session.Run(app, sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %6.2fx", r.Agg.IPC()/base.Agg.IPC())
		}
		fmt.Println()
	}
	fmt.Println("\ncaws* uses oracle criticality profiled from the baseline run.")
	fmt.Println("All runs verified against the workloads' Go reference implementations.")
}
