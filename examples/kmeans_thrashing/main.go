// kmeans_thrashing demonstrates the paper's headline result: the
// kmeans assignment kernel thrashes the 16KB L1 data cache, and the
// coordinated CAWA design (greedy criticality-aware scheduling plus
// criticality-aware cache prioritization) recovers a large fraction of
// the lost performance — the paper reports a 3.13x speedup over the
// round-robin baseline on the full-size input.
package main

import (
	"fmt"
	"log"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

func main() {
	cfg := config.GTX480()
	params := workloads.Params{Scale: 1, Seed: 1}
	session := harness.NewSession(cfg, params)

	points := []struct {
		name string
		sc   core.SystemConfig
	}{
		{"rr (baseline)", core.Baseline()},
		{"2lvl", core.SystemConfig{Scheduler: "2lvl"}},
		{"gto", core.SystemConfig{Scheduler: "gto"}},
		{"gcaws", core.SystemConfig{Scheduler: "gcaws", CPL: true}},
		{"cawa (gcaws+cacp)", core.CAWA()},
	}

	var baseIPC float64
	fmt.Println("design point        cycles     IPC   speedup  L1D miss%   MPKI")
	for i, pt := range points {
		res, err := session.Run("kmeans", pt.sc)
		if err != nil {
			log.Fatal(err)
		}
		a := &res.Agg
		if i == 0 {
			baseIPC = a.IPC()
		}
		fmt.Printf("%-18s %8d  %6.2f  %7.2fx  %8.1f%%  %6.1f\n",
			pt.name, a.Cycles, a.IPC(), a.IPC()/baseIPC, a.L1DMissRate()*100, a.MPKI())
	}
	fmt.Println("\nAll runs verified against the Go reference k-means.")
}
