// Quickstart: assemble a tiny kernel with the mini-ISA builder, run it
// on the simulated GTX480 under two schedulers, and print the timing
// difference. This is the smallest end-to-end use of the library:
// memory image -> kernel -> GPU -> launch -> stats.
package main

import (
	"context"
	"fmt"
	"log"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/gpu"
	"cawa/internal/isa"
	"cawa/internal/memory"
	"cawa/internal/simt"
)

func main() {
	const n = 4096

	// SAXPY: y[i] = a*x[i] + y[i].
	b := isa.NewBuilder("saxpy")
	b.SReg(isa.R0, isa.SRGTid)
	b.Param(isa.R1, 3) // n
	b.SetGE(isa.R2, isa.R0, isa.R1)
	b.CBra(isa.R2, "exit")
	b.MulI(isa.R3, isa.R0, 8) // byte offset
	b.Param(isa.R4, 0)        // x
	b.Add(isa.R4, isa.R4, isa.R3)
	b.Ld(isa.R5, isa.R4, 0)
	b.Param(isa.R6, 1) // y
	b.Add(isa.R6, isa.R6, isa.R3)
	b.Ld(isa.R7, isa.R6, 0)
	b.Param(isa.R8, 2) // a (float bits)
	b.FMul(isa.R5, isa.R5, isa.R8)
	b.FAdd(isa.R5, isa.R5, isa.R7)
	b.St(isa.R6, 0, isa.R5)
	b.Label("exit")
	b.Exit()
	prog := b.MustBuild()
	fmt.Println(prog.Disasm())

	for _, point := range []struct {
		name string
		sc   core.SystemConfig
	}{
		{"round-robin baseline", core.Baseline()},
		{"full CAWA", core.CAWA()},
	} {
		mem := memory.New(1 << 22)
		x := mem.Alloc(n)
		y := mem.Alloc(n)
		for i := 0; i < n; i++ {
			mem.StoreF(x+int64(i)*8, float64(i))
			mem.StoreF(y+int64(i)*8, 1)
		}
		kernel := &simt.Kernel{
			Name:     "saxpy",
			Program:  prog,
			GridDim:  n / 256,
			BlockDim: 256,
			Params:   []int64{x, y, isa.F2B(2.5), n},
		}

		g, err := buildGPU(point.sc, mem)
		if err != nil {
			log.Fatal(err)
		}
		launch, err := g.Launch(context.Background(), kernel)
		if err != nil {
			log.Fatal(err)
		}
		// Check a few results.
		for _, i := range []int{0, 1, n - 1} {
			want := 2.5*float64(i) + 1
			if got := mem.LoadF(y + int64(i)*8); got != want {
				log.Fatalf("y[%d] = %v, want %v", i, got, want)
			}
		}
		fmt.Printf("%-22s cycles=%-8d IPC=%6.2f L1D-MPKI=%.2f\n",
			point.name, launch.Cycles, launch.IPC(), launch.MPKI())
	}
}

func buildGPU(sc core.SystemConfig, mem *memory.Memory) (*gpu.GPU, error) {
	return sc.NewGPU(config.GTX480(), mem)
}
