// bfs_criticality reproduces the paper's motivation study (Section 2)
// on the bfs workload: the per-warp execution time disparity within a
// thread block, its breakdown into memory and scheduler-induced stall
// cycles, and how the disparity shrinks under the CAWA design.
package main

import (
	"fmt"
	"log"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

func main() {
	cfg := config.GTX480()
	params := workloads.Params{Scale: 1, Seed: 1}

	for _, point := range []struct {
		name string
		sc   core.SystemConfig
	}{
		{"baseline RR", core.Baseline()},
		{"CAWA", core.CAWA()},
	} {
		res, err := harness.Run(harness.RunOptions{
			Workload: "bfs",
			Params:   params,
			System:   point.sc,
			Config:   cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		a := &res.Agg
		fmt.Printf("== bfs under %s ==\n", point.name)
		fmt.Printf("cycles %d, IPC %.2f, max block disparity %.3f, mean %.3f\n",
			a.Cycles, a.IPC(), a.MaxDisparity(2), a.MeanDisparity(2))

		// Warp time profile of the worst block (Figure 2 style).
		var worst []stats.WarpRecord
		worstD := -1.0
		for _, ws := range a.BlockGroup() {
			if len(ws) < 8 {
				continue
			}
			if d := stats.BlockDisparity(ws); d > worstD {
				worstD, worst = d, ws
			}
		}
		if worst != nil {
			sorted := stats.SortedByExecTime(worst)
			slowest := sorted[len(sorted)-1]
			fmt.Printf("worst block: %d warps, disparity %.3f\n", len(sorted), worstD)
			fmt.Println("warp  cycles  mem%  sched-wait%")
			for i, w := range sorted {
				exec := float64(w.ExecTime())
				if exec == 0 {
					exec = 1
				}
				fmt.Printf("w%02d  %7d  %4.1f  %10.1f\n",
					i, w.ExecTime(), 100*float64(w.MemStall)/exec, 100*float64(w.SchedStall)/exec)
			}
			fmt.Printf("critical warp gid %d ran %d cycles\n\n", slowest.GID, slowest.ExecTime())
		}
	}
}
