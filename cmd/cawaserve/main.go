// Command cawaserve exposes the CAWA simulator as a long-running HTTP
// service: submit (application, design point) jobs, poll for results,
// scrape /metrics, and reuse previous campaigns through the persistent
// disk cache. SIGINT/SIGTERM drains gracefully — admission stops,
// in-flight simulations finish (or are cancelled at the drain
// deadline), then the process exits.
//
// Usage:
//
//	cawaserve -addr :8080 -cache-dir /var/cache/cawa -scale 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cawa/internal/config"
	"cawa/internal/harness"
	"cawa/internal/serve"
	"cawa/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (default: NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", workloads.DefaultParams().Seed, "workload seed")
	sms := flag.Int("sms", 0, "override simulated SM count (0 = architecture default)")
	small := flag.Bool("small", false, "use the reduced Small architecture instead of GTX480")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (empty = memory only)")
	drainWait := flag.Duration("drain", 2*time.Minute, "graceful-drain deadline on SIGTERM")
	flag.Parse()

	cfg := config.GTX480()
	if *small {
		cfg = config.Small()
	}
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	params := workloads.Params{Scale: *scale, Seed: *seed}

	sess := harness.NewSession(cfg, params)
	if *workers > 0 {
		sess.SetWorkers(*workers)
	}
	if *cacheDir != "" {
		disk, err := harness.OpenDiskCache(*cacheDir)
		if err != nil {
			log.Fatalf("cawaserve: open disk cache: %v", err)
		}
		sess.Disk = disk
		log.Printf("cawaserve: disk cache %s (%d entries)", *cacheDir, disk.Len())
	}

	srv := serve.New(serve.Config{
		Session:        sess,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	errs := make(chan error, 1)
	go func() { errs <- httpSrv.ListenAndServe() }()
	log.Printf("cawaserve: serving %s on %s (workers=%d queue=%d scale=%g seed=%d)",
		cfg.Name, *addr, sess.Workers(), *queue, params.Scale, params.Seed)

	select {
	case sig := <-sigs:
		log.Printf("cawaserve: %v — draining (deadline %s)", sig, *drainWait)
	case err := <-errs:
		log.Fatalf("cawaserve: listen: %v", err)
	}

	// Stop admission first so the health check flips and load balancers
	// route away, then close the listener, then drain the workers.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cawaserve: http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Printf("cawaserve: drain cut short: %v", err)
		os.Exit(1)
	}
	fmt.Println("cawaserve: drained cleanly")
}
