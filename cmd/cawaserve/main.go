// Command cawaserve exposes the CAWA simulator as a long-running HTTP
// service: submit (application, design point) jobs, poll for results,
// scrape /metrics, and reuse previous campaigns through the persistent
// disk cache. SIGINT/SIGTERM drains gracefully — admission stops,
// in-flight simulations finish (or are cancelled at the drain
// deadline), then the process exits.
//
// The process emits a structured request log via log/slog: one line
// per HTTP exchange plus one per job lifecycle transition, each
// carrying the request id (client X-Request-ID or server-minted),
// job id, app, design point, outcome and queue/run durations.
// -log-format json switches from the human text handler to JSON for
// log shippers.
//
// Usage:
//
//	cawaserve -addr :8080 -cache-dir /var/cache/cawa -scale 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cawa/internal/config"
	"cawa/internal/harness"
	"cawa/internal/serve"
	"cawa/internal/workloads"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (default: NumCPU)")
	queue := flag.Int("queue", 64, "admission queue depth")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", workloads.DefaultParams().Seed, "workload seed")
	sms := flag.Int("sms", 0, "override simulated SM count (0 = architecture default)")
	small := flag.Bool("small", false, "use the reduced Small architecture instead of GTX480")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (empty = memory only)")
	drainWait := flag.Duration("drain", 2*time.Minute, "graceful-drain deadline on SIGTERM")
	logFormat := flag.String("log-format", "text", "request log format: text or json")
	barrierSpins := flag.Int("barrier-spins", 0, "pin the parallel-engine barrier spin budget (0 = adaptive)")
	lookahead := flag.Bool("lookahead", false, "multi-cycle safe-horizon epochs on the parallel engine (byte-identical results)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "cawaserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	cfg := config.GTX480()
	if *small {
		cfg = config.Small()
	}
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	params := workloads.Params{Scale: *scale, Seed: *seed}

	sess := harness.NewSession(cfg, params)
	sess.BarrierSpins = *barrierSpins
	sess.Lookahead = *lookahead
	if *workers > 0 {
		sess.SetWorkers(*workers)
	}
	if *cacheDir != "" {
		disk, err := harness.OpenDiskCache(*cacheDir)
		if err != nil {
			logger.Error("open disk cache", slog.String("dir", *cacheDir), slog.String("error", err.Error()))
			os.Exit(1)
		}
		sess.Disk = disk
		logger.Info("disk cache attached", slog.String("dir", *cacheDir), slog.Int("entries", disk.Len()))
	}

	srv := serve.New(serve.Config{
		Session:        sess,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		Logger:         logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	errs := make(chan error, 1)
	go func() { errs <- httpSrv.ListenAndServe() }()
	logger.Info("serving",
		slog.String("arch", cfg.Name),
		slog.String("addr", *addr),
		slog.Int("workers", sess.Workers()),
		slog.Int("queue", *queue),
		slog.Float64("scale", params.Scale),
		slog.Int64("seed", params.Seed))

	select {
	case sig := <-sigs:
		logger.Info("draining", slog.String("signal", sig.String()), slog.Duration("deadline", *drainWait))
	case err := <-errs:
		logger.Error("listen", slog.String("error", err.Error()))
		os.Exit(1)
	}

	// Stop admission first so the health check flips and load balancers
	// route away, then close the listener, then drain the workers.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", slog.String("error", err.Error()))
	}
	if err := srv.Drain(ctx); err != nil {
		logger.Error("drain cut short", slog.String("error", err.Error()))
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
