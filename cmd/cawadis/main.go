// Command cawadis assembles, disassembles, and statically verifies
// mini-ISA programs: it parses an assembly file (the syntax of
// Program.Disasm, see internal/isa), computes SIMT reconvergence
// points, and prints the annotated disassembly plus basic-block and
// register-pressure statistics. With -lint it runs the full verifier
// (internal/isa/analysis) and exits non-zero on error findings.
//
// Usage:
//
//	cawadis file.casm            # disassemble + stats
//	cawadis -                    # read from stdin
//	cawadis -lint file.casm ...  # verify; findings to stderr, exit 1
//	cawadis -lint -json file...  # machine-readable reports on stdout
//	cawadis -lint -workload all  # verify built-in workload kernels
//
// Parse failures are positioned as file:line; exit status is 1 for
// findings or parse errors and 2 for usage errors.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cawa/internal/isa"
	"cawa/internal/isa/analysis"
	"cawa/internal/simt"
	"cawa/internal/workloads"
)

func main() {
	lint := flag.Bool("lint", false, "run the static verifier; exit 1 on error findings")
	jsonOut := flag.Bool("json", false, "with -lint, emit reports as JSON on stdout")
	workload := flag.String("workload", "", "with -lint, verify a built-in workload's kernel (or 'all')")
	strict := flag.Bool("strict", false, "with -lint, also flag upper-bound affine escapes")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cawadis [-lint [-json] [-strict]] <file.casm...| ->")
		fmt.Fprintln(os.Stderr, "       cawadis -lint [-json] -workload <name|all>")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *workload != "" {
		if !*lint {
			fmt.Fprintln(os.Stderr, "cawadis: -workload requires -lint")
			os.Exit(2)
		}
		os.Exit(lintWorkloads(*workload, *jsonOut, *strict))
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	status := 0
	var reports []*analysis.Report
	for _, arg := range flag.Args() {
		prog, err := load(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawadis: %v\n", err)
			status = 1
			continue
		}
		rep := analysis.Analyze(prog, analysis.Options{StrictBounds: *strict})
		if *lint {
			reports = append(reports, rep)
			if report(arg, rep, *jsonOut) {
				status = 1
			}
			continue
		}
		fmt.Print(prog.Disasm())
		printStats(prog, rep)
	}
	if *lint && *jsonOut {
		emitJSON(reports)
	}
	os.Exit(status)
}

// load reads one source (a path or "-" for stdin) and assembles it.
// Parse errors come back positioned as file:line.
func load(arg string) (*isa.Program, error) {
	var src []byte
	var err error
	name := "stdin"
	if arg == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(arg)
		name = strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
	}
	if err != nil {
		return nil, err
	}
	prog, err := isa.Parse(name, string(src))
	if err != nil {
		var pe *isa.ParseError
		if errors.As(err, &pe) && pe.Line > 0 {
			return nil, fmt.Errorf("%s:%d: %v", arg, pe.Line, pe.Unwrap())
		}
		return nil, fmt.Errorf("%s: %v", arg, err)
	}
	return prog, nil
}

// printStats renders the control-flow, basic-block, and
// register-pressure summary under the disassembly.
func printStats(prog *isa.Program, rep *analysis.Report) {
	branches, divergable, mem, bar := 0, 0, 0, 0
	for pc := int32(0); pc < int32(prog.Len()); pc++ {
		in := prog.At(pc)
		switch {
		case in.Op.IsCondBranch():
			branches++
			divergable++
		case in.Op.IsBranch():
			branches++
		case in.Op.IsMem():
			mem++
		case in.Op == isa.OpBar:
			bar++
		}
	}
	fmt.Printf("\n// %d instructions, %d branches (%d divergable), %d global memory ops, %d barriers\n",
		prog.Len(), branches, divergable, mem, bar)
	fmt.Printf("// %d basic blocks, %d loops, %d registers used, max %d live, stack depth <= %d\n",
		len(rep.Blocks), rep.Loops, rep.RegsUsed, rep.MaxLive, rep.StackDepth)
	for _, b := range rep.Blocks {
		liveIn := 0
		if int(b.ID) < len(rep.BlockLiveIn) {
			liveIn = rep.BlockLiveIn[b.ID]
		}
		loop := ""
		if b.LoopHead {
			loop = " loop-head"
		}
		fmt.Printf("//   block %d: pc %d..%d, succs %v, live-in %d%s\n",
			b.ID, b.Start, b.End-1, b.Succs, liveIn, loop)
	}
	for pc := int32(0); pc < int32(prog.Len()); pc++ {
		in := prog.At(pc)
		if in.Op.IsCondBranch() {
			fmt.Printf("//   branch @%d -> %d, reconverges at %d\n", pc, in.Target(), in.Rpc)
		}
	}
}

// report prints one lint report in human form to stderr and returns
// whether it contains error findings.
func report(source string, rep *analysis.Report, jsonOut bool) bool {
	failed := len(rep.Errors()) > 0
	if jsonOut {
		return failed
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", source, f)
	}
	if len(rep.Findings) == 0 {
		fmt.Printf("%s: %s: clean (%d instrs, %d blocks, %d regs, max %d live)\n",
			source, rep.Program, rep.Instrs, len(rep.Blocks), rep.RegsUsed, rep.MaxLive)
	}
	return failed
}

func emitJSON(reports []*analysis.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		fmt.Fprintf(os.Stderr, "cawadis: %v\n", err)
		os.Exit(1)
	}
}

// lintWorkloads verifies the built-in workload kernels with their real
// launch geometry — the same checks gpu.Launch applies.
func lintWorkloads(which string, jsonOut, strict bool) int {
	names := workloads.Names()
	if which != "all" {
		names = []string{which}
	}
	status := 0
	var reports []*analysis.Report
	for _, name := range names {
		w, err := workloads.New(name, workloads.DefaultParams())
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawadis: %v\n", err)
			return 2
		}
		k, ok := w.Next()
		if !ok {
			fmt.Fprintf(os.Stderr, "cawadis: workload %s yields no kernel\n", name)
			return 2
		}
		launch := launchOf(k, w)
		rep := analysis.Analyze(k.Program, analysis.Options{Launch: launch, StrictBounds: strict})
		reports = append(reports, rep)
		if report(name+"/"+k.Name, rep, jsonOut) {
			status = 1
		}
	}
	if jsonOut {
		emitJSON(reports)
	}
	return status
}

func launchOf(k *simt.Kernel, w workloads.Workload) *analysis.Launch {
	launch := k.AnalysisLaunch()
	launch.GlobalBytes = w.Mem().Size()
	return launch
}
