// Command cawadis assembles and disassembles mini-ISA programs: it
// parses an assembly file (the syntax of Program.Disasm, see
// internal/isa), validates it, computes SIMT reconvergence points, and
// prints the annotated disassembly plus basic-block statistics.
//
// Usage:
//
//	cawadis file.casm
//	cawadis -           # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cawa/internal/isa"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cawadis <file.casm | ->")
		os.Exit(2)
	}
	arg := flag.Arg(0)
	var src []byte
	var err error
	name := "stdin"
	if arg == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(arg)
		name = strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
	}
	if err != nil {
		fatal(err)
	}
	prog, err := isa.Parse(name, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Print(prog.Disasm())

	// Control-flow summary.
	branches, divergable, mem, bar := 0, 0, 0, 0
	for pc := int32(0); pc < int32(prog.Len()); pc++ {
		in := prog.At(pc)
		switch {
		case in.Op.IsCondBranch():
			branches++
			divergable++
		case in.Op.IsBranch():
			branches++
		case in.Op.IsMem():
			mem++
		case in.Op == isa.OpBar:
			bar++
		}
	}
	fmt.Printf("\n// %d instructions, %d branches (%d divergable), %d global memory ops, %d barriers\n",
		prog.Len(), branches, divergable, mem, bar)
	for pc := int32(0); pc < int32(prog.Len()); pc++ {
		in := prog.At(pc)
		if in.Op.IsCondBranch() {
			fmt.Printf("//   branch @%d -> %d, reconverges at %d\n", pc, in.Target(), in.Rpc)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cawadis:", err)
	os.Exit(1)
}
