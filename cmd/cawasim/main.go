// Command cawasim runs one GPGPU workload on one simulated design
// point and prints its performance summary.
//
// Usage:
//
//	cawasim -workload bfs -scheduler gcaws -cpl -cacp [-scale 1] [-seed 1] [-sms 15] [-smpar N] [-v]
//
// Schedulers: lrr (baseline RR), gto, 2lvl, caws (oracle), gcaws.
// The full CAWA design point is -scheduler gcaws -cpl -cacp.
//
// Observability (see README "Observability"):
//
//	-trace-json out.json   Chrome trace-event file: per-warp spans with
//	                       stall slices plus counter tracks (open in
//	                       Perfetto or chrome://tracing)
//	-obs-dir DIR           write trace.json, metrics.csv, metrics.json
//	                       and manifest.json into DIR
//	-sample-every N        metric sampling cadence in cycles
//	-hotpcs N              print the N PCs with the most stall time,
//	                       from the same event stream as the trace
//
// Engine self-profiling (see DESIGN.md "Self-profiling"):
//
//	-perf FILE             profile the engine's own wall-clock phases
//	                       (domain compute, barrier wait, staged commit,
//	                       memsys drain, fast-forward planning) and write
//	                       the PerfReport JSON to FILE; simulated results
//	                       stay byte-identical
//	-perf-trace FILE       also write the profile as Chrome trace-event
//	                       counter tracks (Perfetto / chrome://tracing)
//	-barrier-spins N       pin the parallel engine's barrier spin budget
//	                       (0 = adaptive)
//	-lookahead             multi-cycle safe-horizon epochs on the
//	                       parallel engine (byte-identical results;
//	                       fewer barriers per simulated kilocycle)
//
// Sampled simulation (see DESIGN.md "Checkpoint/restore + sampled
// simulation"):
//
//	-sample-warmup N       run the first N launches on the timing model
//	                       (cache/predictor warmup) before sampling
//	-sample-interval K     after the warmup, run every Kth launch on the
//	                       timing model and the rest functionally
//	                       (exact memory, no timing); <=1 = full detail
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/obs"
	"cawa/internal/obs/perf"
	"cawa/internal/sched"
	"cawa/internal/sm"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "bfs", "workload name ("+strings.Join(workloads.Names(), ", ")+")")
		scheduler = flag.String("scheduler", "lrr", "warp scheduler ("+strings.Join(sched.Names(), ", ")+")")
		cpl       = flag.Bool("cpl", false, "attach the CPL criticality predictor")
		cacp      = flag.Bool("cacp", false, "enable criticality-aware cache prioritization (implies -cpl)")
		scale     = flag.Float64("scale", 1, "workload size multiplier")
		seed      = flag.Int64("seed", 1, "input generator seed")
		sms       = flag.Int("sms", 0, "override number of SMs (default: GTX480's 15)")
		verbose   = flag.Bool("v", false, "print per-block warp summaries")
		hotpcs    = flag.Int("hotpcs", 0, "print the N PCs with the most stall time")
		fastfwd   = flag.Bool("fastforward", true, "event-driven idle-cycle fast-forwarding (results are byte-identical either way)")
		smpar     = flag.Int("smpar", 1, "SM-domain goroutines for the parallel intra-run engine (byte-identical results; 0 = one per core, <=1 = serial; forced serial when tracing attaches observers)")

		traceJSON   = flag.String("trace-json", "", "write a Chrome trace-event file (Perfetto / chrome://tracing)")
		obsDir      = flag.String("obs-dir", "", "write observability artifacts (trace.json, metrics.csv, metrics.json, manifest.json) into this directory")
		sampleEvery = flag.Int64("sample-every", 0, fmt.Sprintf("metric sampling interval in cycles (0 = %d when observability is on)", obs.DefaultSampleEvery))

		perfJSON     = flag.String("perf", "", "profile the engine's wall-clock phases and write the PerfReport JSON to this file")
		perfTrace    = flag.String("perf-trace", "", "write the engine profile as Chrome trace-event counter tracks")
		barrierSpins = flag.Int("barrier-spins", 0, "pin the parallel-engine barrier spin budget (0 = adaptive)")
		lookahead    = flag.Bool("lookahead", false, "multi-cycle safe-horizon epochs on the parallel engine (byte-identical results)")

		sampleWarmup   = flag.Int("sample-warmup", 0, "sampled simulation: detailed launches before the first skip window (cache/predictor warmup)")
		sampleInterval = flag.Int("sample-interval", 0, "sampled simulation: run every Nth launch after the warmup on the timing model, the rest functionally (<=1 = full detail)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	sc := core.SystemConfig{Scheduler: *scheduler, CPL: *cpl || *cacp, CACP: *cacp}
	if *scheduler == "caws" {
		fmt.Fprintln(os.Stderr, "cawasim: profiling baseline run for oracle criticality...")
		s := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: *seed})
		oracle, err := s.OracleFor(*workload)
		if err != nil {
			fatal(err)
		}
		sc.Oracle = oracle
	}

	smWorkers := *smpar
	if smWorkers == 0 {
		smWorkers = runtime.GOMAXPROCS(0)
	}
	opt := harness.RunOptions{
		Workload:           *workload,
		Params:             workloads.Params{Scale: *scale, Seed: *seed},
		System:             sc,
		Config:             cfg,
		DisableFastForward: !*fastfwd,
		// The harness forces tracing runs (whose observers share state
		// across SMs) back onto the serial engine.
		SMWorkers:      smWorkers,
		BarrierSpins:   *barrierSpins,
		Lookahead:      *lookahead,
		SampleWarmup:   *sampleWarmup,
		SampleInterval: *sampleInterval,
	}

	// Engine self-profiling: purely observational — the profiler reads
	// the wall clock at the orchestrator's phase seams and never feeds
	// simulated state, so results stay byte-identical (the equivalence
	// tests pin this).
	var prof *perf.Profiler
	if *perfJSON != "" || *perfTrace != "" {
		prof = harness.NewWallProfiler(perf.DefaultSampleEvery)
		opt.Profiler = prof
	}

	// Observability wiring. The collector decorates every SM's
	// criticality provider with a trace recorder (one event stream for
	// the Chrome trace and the hot-PC report); the sampler polls the
	// metric registry on a cycle cadence for counter tracks and time
	// series. Neither is attached unless requested, so plain runs are
	// bit-identical to pre-observability builds.
	wantTrace := *traceJSON != "" || *obsDir != ""
	sysKey, err := sc.Key()
	if err != nil {
		sysKey = sc.Label()
	}
	var collector *obs.Collector
	var sampler *obs.Sampler
	if wantTrace || *hotpcs > 0 {
		collector = obs.NewCollector(1 << 20)
		needCPL := sc.CPL || sc.CACP || sc.Scheduler == "gcaws"
		oracle := sc.Oracle
		opt.System.ProviderOverride = collector.Wrap(func() sm.CriticalityProvider {
			switch {
			case oracle != nil:
				return core.NewOracle(oracle)
			case needCPL:
				return core.NewCPL()
			}
			return nil
		})
	}
	if wantTrace {
		sampler = obs.NewSampler(nil, *sampleEvery)
		opt.PerCycle = sampler.OnCycle
		// The wake hint keeps fast-forwarding effective with sampling on:
		// skips clamp to the sampler's cadence instead of being disabled.
		opt.PerCycleWake = sampler.NextWake
	}

	start := time.Now()
	res, err := harness.Run(opt)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}

	a := &res.Agg
	fmt.Printf("workload       %s (verified against Go reference)\n", res.Workload)
	fmt.Printf("design point   %s\n", res.System)
	if res.Detailed != res.Launches {
		fmt.Printf("launches       %d (%d detailed, %d functional)\n",
			res.Launches, res.Detailed, res.Launches-res.Detailed)
	} else {
		fmt.Printf("launches       %d\n", res.Launches)
	}
	fmt.Printf("cycles         %d\n", a.Cycles)
	fmt.Printf("warp instrs    %d\n", a.Instructions)
	fmt.Printf("thread instrs  %d\n", a.ThreadInstrs)
	fmt.Printf("IPC            %.3f\n", a.IPC())
	fmt.Printf("L1D accesses   %d\n", a.L1DAccesses)
	fmt.Printf("L1D misses     %d (%.2f%% miss rate, %.2f MPKI)\n",
		a.L1DMisses, a.L1DMissRate()*100, a.MPKI())
	fmt.Printf("L2 accesses    %d (misses %d)\n", a.L2Accesses, a.L2Misses)
	fmt.Printf("coalescing     %.2f transactions per memory instruction\n", a.CoalescingFactor())
	fmt.Printf("warps          %d\n", len(a.Warps))
	fmt.Printf("max disparity  %.3f\n", a.MaxDisparity(2))
	fmt.Printf("mean disparity %.3f\n", a.MeanDisparity(2))

	if *verbose {
		for block, ws := range a.BlockGroup() {
			cw := stats.CriticalWarp(ws)
			fmt.Printf("block %4d: %2d warps, disparity %.3f, critical gid %d (%d cycles)\n",
				block, len(ws), stats.BlockDisparity(ws), cw.GID, cw.ExecTime())
		}
	}

	var perfReport *perf.Report
	if prof != nil {
		perfReport = prof.Report()
		if err := writePerfArtifacts(perfReport, *perfJSON, *perfTrace); err != nil {
			fatal(err)
		}
	}

	if wantTrace {
		if err := writeObsArtifacts(res, collector, sampler, elapsed, *traceJSON, *obsDir, cfg, opt.Params, sysKey, perfReport); err != nil {
			fatal(err)
		}
	}

	if *hotpcs > 0 {
		fmt.Printf("\nhottest PCs by accumulated stall (last kernel's retained trace):\n")
		fmt.Println("  pc    op          issues      stall_cycles")
		for _, p := range collector.HotPCs(*hotpcs) {
			fmt.Printf("  %-5d %-10s %9d  %12d\n", p.PC, p.Op, p.Issues, p.Stall)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// writePerfArtifacts renders the engine self-profile: the PerfReport
// JSON and, when requested, its Chrome-trace counter tracks. A one-line
// summary of where the engine spent its wall clock goes to stdout.
func writePerfArtifacts(rep *perf.Report, jsonPath, tracePath string) error {
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonPath, rep.WriteJSON); err != nil {
		return err
	}
	if err := write(tracePath, rep.WriteChromeTrace); err != nil {
		return err
	}
	if len(rep.Shards) > 0 {
		fmt.Printf("engine profile %d epochs, barrier wait %.1f%%, shard spread %.2fx (%s)\n",
			rep.Epochs, rep.BarrierWaitFrac()*100, rep.Spread(), jsonPath)
	} else {
		fmt.Printf("engine profile serial engine, %s total (%s)\n",
			time.Duration(rep.WallNS), jsonPath)
	}
	return nil
}

// writeObsArtifacts renders the Chrome trace and, under -obs-dir, the
// metric time series and the run manifest.
func writeObsArtifacts(res *harness.Result, collector *obs.Collector, sampler *obs.Sampler,
	elapsed time.Duration, traceJSON, obsDir string, cfg config.Config, params workloads.Params, sysKey string,
	perfReport *perf.Report) error {
	events := collector.Events()
	if total := collector.Total(); total > uint64(len(events)) {
		fmt.Fprintf(os.Stderr, "cawasim: trace rings overwrote %d of %d events; only the most recent are exported\n",
			total-uint64(len(events)), total)
	}
	ct := obs.BuildChromeTrace(obs.TraceInput{
		Warps:  res.Agg.Warps,
		Events: events,
		Series: sampler.Series(),
		Spans:  res.Spans,
	})
	if traceJSON != "" {
		if err := ct.WriteFile(traceJSON); err != nil {
			return err
		}
		fmt.Printf("trace          %s (open in Perfetto or chrome://tracing)\n", traceJSON)
	}
	if obsDir == "" {
		return nil
	}
	if err := os.MkdirAll(obsDir, 0o755); err != nil {
		return err
	}
	if err := ct.WriteFile(filepath.Join(obsDir, "trace.json")); err != nil {
		return err
	}
	if err := writeSeries(filepath.Join(obsDir, "metrics.csv"), sampler, obs.WriteSeriesCSV); err != nil {
		return err
	}
	if err := writeSeries(filepath.Join(obsDir, "metrics.json"), sampler, obs.WriteSeriesJSON); err != nil {
		return err
	}
	m := &obs.Manifest{
		Architecture: cfg.Name,
		NumSMs:       cfg.NumSMs,
		Scale:        params.Scale,
		Seed:         params.Seed,
		Workers:      1,
		CacheMisses:  1,
		WallSeconds:  elapsed.Seconds(),
		Perf:         perfReport,
		Runs: []obs.RunRecord{{
			App:       res.Workload,
			System:    res.System,
			SystemKey: sysKey,
			Seconds:   elapsed.Seconds(),
			Launches:  res.Launches,
			Cycles:    res.Agg.Cycles,
			Instrs:    res.Agg.Instructions,
			IPC:       res.Agg.IPC(),
			Warps:     len(res.Agg.Warps),
		}},
	}
	if err := m.WriteFile(filepath.Join(obsDir, "manifest.json")); err != nil {
		return err
	}
	fmt.Printf("observability  %s (trace.json, metrics.csv, metrics.json, manifest.json)\n", obsDir)
	return nil
}

// writeSeries streams the sampler's series through one exporter.
func writeSeries(path string, sampler *obs.Sampler, export func(w io.Writer, series []*obs.Series) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export(f, sampler.Series()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cawasim:", err)
	os.Exit(1)
}
