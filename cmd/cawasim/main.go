// Command cawasim runs one GPGPU workload on one simulated design
// point and prints its performance summary.
//
// Usage:
//
//	cawasim -workload bfs -scheduler gcaws -cpl -cacp [-scale 1] [-seed 1] [-sms 15] [-v]
//
// Schedulers: lrr (baseline RR), gto, 2lvl, caws (oracle), gcaws.
// The full CAWA design point is -scheduler gcaws -cpl -cacp.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/sched"
	"cawa/internal/sm"
	"cawa/internal/stats"
	"cawa/internal/trace"
	"cawa/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "bfs", "workload name ("+strings.Join(workloads.Names(), ", ")+")")
		scheduler = flag.String("scheduler", "lrr", "warp scheduler ("+strings.Join(sched.Names(), ", ")+")")
		cpl       = flag.Bool("cpl", false, "attach the CPL criticality predictor")
		cacp      = flag.Bool("cacp", false, "enable criticality-aware cache prioritization (implies -cpl)")
		scale     = flag.Float64("scale", 1, "workload size multiplier")
		seed      = flag.Int64("seed", 1, "input generator seed")
		sms       = flag.Int("sms", 0, "override number of SMs (default: GTX480's 15)")
		verbose   = flag.Bool("v", false, "print per-block warp summaries")
		hotpcs    = flag.Int("hotpcs", 0, "trace execution and print the N PCs with the most stall time")
	)
	flag.Parse()

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	sc := core.SystemConfig{Scheduler: *scheduler, CPL: *cpl || *cacp, CACP: *cacp}
	if *scheduler == "caws" {
		fmt.Fprintln(os.Stderr, "cawasim: profiling baseline run for oracle criticality...")
		s := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: *seed})
		oracle, err := s.OracleFor(*workload)
		if err != nil {
			fatal(err)
		}
		sc.Oracle = oracle
	}

	var recorders []*trace.Recorder
	opt := harness.RunOptions{
		Workload: *workload,
		Params:   workloads.Params{Scale: *scale, Seed: *seed},
		System:   sc,
		Config:   cfg,
	}
	if *hotpcs > 0 {
		// Decorate every SM's criticality provider with a recorder.
		needCPL := sc.CPL || sc.CACP || sc.Scheduler == "gcaws"
		oracle := sc.Oracle
		sc.ProviderOverride = func() sm.CriticalityProvider {
			var in sm.CriticalityProvider
			switch {
			case oracle != nil:
				in = core.NewOracle(oracle)
			case needCPL:
				in = core.NewCPL()
			}
			r := trace.NewRecorder(in, 1<<20)
			recorders = append(recorders, r)
			return r
		}
		opt.System = sc
	}

	res, err := harness.Run(opt)
	if err != nil {
		fatal(err)
	}

	a := &res.Agg
	fmt.Printf("workload       %s (verified against Go reference)\n", res.Workload)
	fmt.Printf("design point   %s\n", res.System)
	fmt.Printf("launches       %d\n", res.Launches)
	fmt.Printf("cycles         %d\n", a.Cycles)
	fmt.Printf("warp instrs    %d\n", a.Instructions)
	fmt.Printf("thread instrs  %d\n", a.ThreadInstrs)
	fmt.Printf("IPC            %.3f\n", a.IPC())
	fmt.Printf("L1D accesses   %d\n", a.L1DAccesses)
	fmt.Printf("L1D misses     %d (%.2f%% miss rate, %.2f MPKI)\n",
		a.L1DMisses, a.L1DMissRate()*100, a.MPKI())
	fmt.Printf("L2 accesses    %d (misses %d)\n", a.L2Accesses, a.L2Misses)
	fmt.Printf("coalescing     %.2f transactions per memory instruction\n", a.CoalescingFactor())
	fmt.Printf("warps          %d\n", len(a.Warps))
	fmt.Printf("max disparity  %.3f\n", a.MaxDisparity(2))
	fmt.Printf("mean disparity %.3f\n", a.MeanDisparity(2))

	if *verbose {
		for block, ws := range a.BlockGroup() {
			cw := stats.CriticalWarp(ws)
			fmt.Printf("block %4d: %2d warps, disparity %.3f, critical gid %d (%d cycles)\n",
				block, len(ws), stats.BlockDisparity(ws), cw.GID, cw.ExecTime())
		}
	}

	if *hotpcs > 0 {
		agg := make(map[int32]trace.PCProfile)
		for _, r := range recorders {
			for _, p := range r.HotPCs() {
				a := agg[p.PC]
				a.PC, a.Op = p.PC, p.Op
				a.Issues += p.Issues
				a.Stall += p.Stall
				agg[p.PC] = a
			}
		}
		profiles := make([]trace.PCProfile, 0, len(agg))
		for _, p := range agg {
			profiles = append(profiles, p)
		}
		sort.Slice(profiles, func(i, j int) bool { return profiles[i].Stall > profiles[j].Stall })
		if len(profiles) > *hotpcs {
			profiles = profiles[:*hotpcs]
		}
		fmt.Printf("\nhottest PCs by accumulated stall (last kernel's retained trace):\n")
		fmt.Println("  pc    op          issues      stall_cycles")
		for _, p := range profiles {
			fmt.Printf("  %-5d %-10s %9d  %12d\n", p.PC, p.Op, p.Issues, p.Stall)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cawasim:", err)
	os.Exit(1)
}
