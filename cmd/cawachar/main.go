// Command cawachar characterizes the warp criticality of one workload:
// per-block execution-time disparity, the stall breakdown of critical
// versus non-critical warps, and the reuse-distance profile of the
// critical warps' cache lines — the Section 2 methodology of the paper
// applied to any registered workload.
//
// Usage:
//
//	cawachar -workload bfs [-scheduler lrr] [-scale 1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/memsys"
	"cawa/internal/reuse"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "bfs", "workload name")
		scheduler = flag.String("scheduler", "lrr", "warp scheduler")
		scale     = flag.Float64("scale", 1, "workload size multiplier")
		seed      = flag.Int64("seed", 1, "input generator seed")
		sms       = flag.Int("sms", 0, "override number of SMs")
	)
	flag.Parse()

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	profilers := make([]*reuse.Profiler, cfg.NumSMs)
	res, err := harness.Run(harness.RunOptions{
		Workload: *workload,
		Params:   workloads.Params{Scale: *scale, Seed: *seed},
		System:   core.SystemConfig{Scheduler: *scheduler, CPL: true},
		Config:   cfg,
		AttachL1: func(smID int, l1 *memsys.L1D) {
			profilers[smID] = reuse.NewProfiler(32, 128, 128, 2048)
			l1.AccessListener = profilers[smID].Record
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawachar:", err)
		os.Exit(1)
	}

	a := &res.Agg
	fmt.Printf("workload %s on %s: %d cycles, IPC %.2f, MPKI %.2f\n\n",
		*workload, *scheduler, a.Cycles, a.IPC(), a.MPKI())

	// Per-block disparity, worst blocks first.
	groups := a.BlockGroup()
	type row struct {
		block int
		ws    []stats.WarpRecord
		d     float64
	}
	rows := make([]row, 0, len(groups))
	for b, ws := range groups {
		rows = append(rows, row{b, ws, stats.BlockDisparity(ws)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	fmt.Println("block  warps  disparity  critical_gid  crit_cycles  crit_mem%  crit_schedwait%")
	show := rows
	if len(show) > 12 {
		show = show[:12]
	}
	for _, r := range show {
		cw := stats.CriticalWarp(r.ws)
		exec := float64(cw.ExecTime())
		if exec == 0 {
			exec = 1
		}
		fmt.Printf("%5d  %5d  %9.3f  %12d  %11d  %8.1f%%  %14.1f%%\n",
			r.block, len(r.ws), r.d, cw.GID, cw.ExecTime(),
			100*float64(cw.MemStall)/exec, 100*float64(cw.SchedStall)/exec)
	}

	// Reuse-distance profile of critical-warp lines.
	crit := harness.CriticalGIDs(a, 2)
	gids := make([]int, 0, len(crit))
	for g := range crit {
		gids = append(gids, g)
	}
	var pooled reuse.Histogram
	for _, p := range profilers {
		if p == nil {
			continue
		}
		for gid, h := range p.ByWarp {
			if !crit[gid] {
				continue
			}
			pooled.ColdN += h.ColdN
			pooled.Total += h.Total
			for i, v := range h.Buckets {
				pooled.Buckets[i] += v
			}
		}
	}
	fmt.Printf("\ncritical warps: %d, L1 accesses %d (%d reuses)\n",
		len(gids), pooled.Total, pooled.Reuses())
	fmt.Printf("reuses evicted before re-reference in a 4-way set: %.1f%%\n",
		100*pooled.FracBeyond(4))
	fmt.Printf("reuses evicted before re-reference in a 16-way set: %.1f%%\n",
		100*pooled.FracBeyond(16))
}
