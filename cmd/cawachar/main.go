// Command cawachar characterizes the warp criticality of workloads:
// per-block execution-time disparity, the stall breakdown of critical
// versus non-critical warps, and the reuse-distance profile of the
// critical warps' cache lines — the Section 2 methodology of the paper
// applied to any registered workload.
//
// Usage:
//
//	cawachar -workload bfs [-scheduler lrr] [-scale 1] [-seed 1]
//	cawachar -workload bfs,kmeans,srad_1 -j 4   # parallel characterization
//
// Several comma-separated workloads characterize concurrently across
// the -j worker pool (default all cores); reports print in the order
// given.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/memsys"
	"cawa/internal/reuse"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "bfs", "comma-separated workload names")
		scheduler = flag.String("scheduler", "lrr", "warp scheduler")
		scale     = flag.Float64("scale", 1, "workload size multiplier")
		seed      = flag.Int64("seed", 1, "input generator seed")
		sms       = flag.Int("sms", 0, "override number of SMs")
		workers   = flag.Int("j", 0, "max concurrent simulations (0 = all cores)")
	)
	flag.Parse()

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	session := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: *seed}).SetWorkers(*workers)

	names := strings.Split(*workload, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	// Fan the characterizations out across the pool, buffering each
	// report so output prints deterministically in the order given.
	reports := make([]bytes.Buffer, len(names))
	err := session.Fanout(len(names), func(i int) error {
		return characterize(&reports[i], session, names[i], *scheduler)
	})
	for i := range reports {
		if i > 0 {
			fmt.Println()
		}
		io.Copy(os.Stdout, &reports[i])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawachar:", err)
		os.Exit(1)
	}
}

// characterize runs one workload under the session's worker pool and
// writes its criticality report to w.
func characterize(w io.Writer, session *harness.Session, workload, scheduler string) error {
	profilers := make([]*reuse.Profiler, session.Config.NumSMs)
	res, err := session.RunUncached(harness.RunOptions{
		Workload: workload,
		System:   core.SystemConfig{Scheduler: scheduler, CPL: true},
		AttachL1: func(smID int, l1 *memsys.L1D) {
			profilers[smID] = reuse.NewProfiler(32, 128, 128, 2048)
			l1.AccessListener = profilers[smID].Record
		},
	})
	if err != nil {
		return err
	}

	a := &res.Agg
	fmt.Fprintf(w, "workload %s on %s: %d cycles, IPC %.2f, MPKI %.2f\n\n",
		workload, scheduler, a.Cycles, a.IPC(), a.MPKI())

	// Per-block disparity, worst blocks first.
	groups := a.BlockGroup()
	type row struct {
		block int
		ws    []stats.WarpRecord
		d     float64
	}
	rows := make([]row, 0, len(groups))
	for b, ws := range groups {
		rows = append(rows, row{b, ws, stats.BlockDisparity(ws)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		return rows[i].block < rows[j].block
	})
	fmt.Fprintln(w, "block  warps  disparity  critical_gid  crit_cycles  crit_mem%  crit_schedwait%")
	show := rows
	if len(show) > 12 {
		show = show[:12]
	}
	for _, r := range show {
		cw := stats.CriticalWarp(r.ws)
		exec := float64(cw.ExecTime())
		if exec == 0 {
			exec = 1
		}
		fmt.Fprintf(w, "%5d  %5d  %9.3f  %12d  %11d  %8.1f%%  %14.1f%%\n",
			r.block, len(r.ws), r.d, cw.GID, cw.ExecTime(),
			100*float64(cw.MemStall)/exec, 100*float64(cw.SchedStall)/exec)
	}

	// Reuse-distance profile of critical-warp lines.
	crit := harness.CriticalGIDs(a, 2)
	gids := make([]int, 0, len(crit))
	for g := range crit {
		gids = append(gids, g)
	}
	var pooled reuse.Histogram
	for _, p := range profilers {
		if p == nil {
			continue
		}
		for gid, h := range p.ByWarp {
			if !crit[gid] {
				continue
			}
			pooled.ColdN += h.ColdN
			pooled.Total += h.Total
			for i, v := range h.Buckets {
				pooled.Buckets[i] += v
			}
		}
	}
	fmt.Fprintf(w, "\ncritical warps: %d, L1 accesses %d (%d reuses)\n",
		len(gids), pooled.Total, pooled.Reuses())
	fmt.Fprintf(w, "reuses evicted before re-reference in a 4-way set: %.1f%%\n",
		100*pooled.FracBeyond(4))
	fmt.Fprintf(w, "reuses evicted before re-reference in a 16-way set: %.1f%%\n",
		100*pooled.FracBeyond(16))
	return nil
}
