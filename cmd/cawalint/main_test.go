package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes run with captured streams and returns the exit code
// plus both outputs.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// badSyntaxModule writes a module with a parse error to a temp dir
// (committing one would trip gofmt over the repo).
func badSyntaxModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module cawa\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\n\nfunc oops( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the documented contract: 0 clean, 1 findings,
// 2 usage or load errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean under baseline", []string{"-interproc", "-dir", "testdata/mod", "-baseline", "testdata/baseline.json"}, 0},
		{"findings", []string{"-interproc", "-dir", "testdata/mod"}, 1},
		{"stale baseline entry", []string{"-interproc", "-dir", "testdata/mod", "-baseline", "testdata/baseline_stale.json"}, 1},
		{"json without interproc", []string{"-json", "out.json", "internal"}, 2},
		{"baseline without interproc", []string{"-baseline", "testdata/baseline.json", "internal"}, 2},
		{"update-baseline without baseline", []string{"-interproc", "-update-baseline", "-dir", "testdata/mod"}, 2},
		{"positional dirs with interproc", []string{"-interproc", "internal"}, 2},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"syntax error in module", []string{"-interproc", "-dir", badSyntaxModule(t)}, 2},
		{"module without the engine roots", []string{"-interproc", "-dir", "testdata/notcawa"}, 2},
		{"missing module dir", []string{"-interproc", "-dir", "testdata/no-such-dir"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.want, stderr)
			}
		})
	}
}

// TestFindingsOutput checks the human-readable mode names the rule and
// carries the witness path.
func TestFindingsOutput(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-interproc", "-dir", "testdata/mod")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "hotpath-alloc") {
		t.Errorf("stdout missing rule name:\n%s", stdout)
	}
	if !strings.Contains(stdout, "[(*cawa/internal/sm.SM).Cycle]") {
		t.Errorf("stdout missing witness path:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr missing summary:\n%s", stderr)
	}
}

// TestStaleBaselineSurfaces checks an unmatched baseline entry comes
// back as a stale-baseline finding rather than being ignored.
func TestStaleBaselineSurfaces(t *testing.T) {
	code, stdout, _ := runCLI(t, "-interproc", "-dir", "testdata/mod", "-baseline", "testdata/baseline_stale.json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stdout, "stale-baseline") {
		t.Errorf("stdout missing stale-baseline finding:\n%s", stdout)
	}
	if strings.Contains(stdout, "hotpath-alloc:") {
		t.Errorf("baselined finding leaked through:\n%s", stdout)
	}
}

// TestJSONGolden pins the -json byte format: sorted, indented,
// stable IDs, module-relative paths. Regenerate with
// CAWALINT_UPDATE_GOLDEN=1 go test cawa/cmd/cawalint -run TestJSONGolden.
var updateGolden = os.Getenv("CAWALINT_UPDATE_GOLDEN") != ""

func TestJSONGolden(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-interproc", "-dir", "testdata/mod", "-json", "-")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	golden := filepath.Join("testdata", "findings.golden.json")
	if updateGolden {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("JSON output differs from %s:\ngot:\n%s\nwant:\n%s", golden, stdout, want)
	}
}

// TestJSONDeterministic runs the analysis twice and requires identical
// bytes: map iteration anywhere in the pipeline would flake here.
func TestJSONDeterministic(t *testing.T) {
	_, first, _ := runCLI(t, "-interproc", "-dir", "testdata/mod", "-json", "-")
	_, second, _ := runCLI(t, "-interproc", "-dir", "testdata/mod", "-json", "-")
	if first != second {
		t.Errorf("two runs produced different JSON:\n%s\nvs:\n%s", first, second)
	}
}

// TestUpdateBaselineRoundTrip regenerates a baseline into a temp file
// and checks the next run is clean under it, with reasons carried over
// from a previous baseline and placeholders for new entries.
func TestUpdateBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	code, _, stderr := runCLI(t, "-interproc", "-dir", "testdata/mod", "-baseline", path, "-update-baseline")
	if code != 0 {
		t.Fatalf("update-baseline exit code = %d (stderr: %s)", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "TODO: justify this acceptance") {
		t.Errorf("new baseline entry missing placeholder reason:\n%s", data)
	}

	code, stdout, stderr := runCLI(t, "-interproc", "-dir", "testdata/mod", "-baseline", path)
	if code != 0 {
		t.Fatalf("run under fresh baseline: exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}

	// Updating again over the existing file must keep its reasons.
	if err := os.WriteFile(path, bytes.Replace(data,
		[]byte("TODO: justify this acceptance"), []byte("a real reviewed reason"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runCLI(t, "-interproc", "-dir", "testdata/mod", "-baseline", path, "-update-baseline")
	if code != 0 {
		t.Fatalf("second update-baseline exit code = %d (stderr: %s)", code, stderr)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a real reviewed reason") {
		t.Errorf("update-baseline dropped the reviewed reason:\n%s", data)
	}
}

// TestPerFileModeStillWorks runs the legacy mode against the fixture
// module (whose packages are clean under the per-file rules).
func TestPerFileModeStillWorks(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-dir", "testdata/mod", "internal")
	if code != 0 {
		t.Fatalf("exit code = %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}
