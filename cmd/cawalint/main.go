// Command cawalint enforces the simulator's determinism invariants
// over its Go source (see internal/lint).
//
// The default per-file mode checks each package in isolation: no
// wall-clock reads or global math/rand in simulation packages, no raw
// map iteration feeding simulation state or output, no goroutines
// outside the sanctioned packages, and no direct memsys.System
// mutation from SM-domain code.
//
// With -interproc the tool type-checks the whole module, builds a
// CHA-style call graph, and additionally enforces the transitive
// rules: the 0-allocs/cycle budget on everything the cycle roots
// reach, the staged-memsys discipline across helper chains, the
// no-synchronization rule for domain-goroutine-reachable code, the
// package-global write ban, and the reachability-based wall-clock
// ban. Accepted findings live in a committed baseline keyed by stable
// finding IDs; -baseline applies it, -update-baseline regenerates it.
//
// Usage:
//
//	cawalint [dirs...]                 # per-file mode (default ./internal)
//	cawalint -interproc [-dir root] [-json out.json] [-baseline file]
//	cawalint -interproc -baseline file -update-baseline
//
// Findings print as file:line:col: rule: message; the exit status is
// 0 when clean, 1 when any finding exists, 2 on usage, load, or I/O
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"cawa/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the
// requested mode, and returns the process exit code (0 clean, 1
// findings, 2 usage/load errors).
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("cawalint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	interproc := fl.Bool("interproc", false, "whole-module interprocedural analysis (call-graph rules + baseline)")
	dir := fl.String("dir", ".", "module root directory (must contain go.mod)")
	jsonOut := fl.String("json", "", "write findings as JSON to this file ('-' for stdout); requires -interproc")
	baselinePath := fl.String("baseline", "", "baseline file of accepted finding IDs; requires -interproc")
	updateBaseline := fl.Bool("update-baseline", false, "rewrite -baseline accepting all current findings, then exit 0; requires -interproc and -baseline")
	fl.Usage = func() {
		fmt.Fprintln(stderr, "usage: cawalint [dirs...]                  (per-file mode, default ./internal)")
		fmt.Fprintln(stderr, "       cawalint -interproc [-dir root] [-json out] [-baseline file] [-update-baseline]")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return 2
	}

	if !*interproc {
		if *jsonOut != "" || *baselinePath != "" || *updateBaseline {
			fmt.Fprintln(stderr, "cawalint: -json, -baseline and -update-baseline require -interproc")
			return 2
		}
		return runPerFile(fl.Args(), *dir, stdout, stderr)
	}
	if fl.NArg() > 0 {
		fmt.Fprintln(stderr, "cawalint: -interproc analyzes the whole module; positional directories are per-file mode only")
		return 2
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "cawalint: -update-baseline requires -baseline to name the file to write")
		return 2
	}
	return runInterproc(*dir, *jsonOut, *baselinePath, *updateBaseline, stdout, stderr)
}

// runInterproc loads the whole module, runs AnalyzeModule, and applies
// or regenerates the baseline.
func runInterproc(dir, jsonOut, baselinePath string, updateBaseline bool, stdout, stderr io.Writer) int {
	m, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "cawalint: %v\n", err)
		return 2
	}
	findings, err := lint.AnalyzeModule(m, lint.DefaultInterOptions())
	if err != nil {
		fmt.Fprintf(stderr, "cawalint: %v\n", err)
		return 2
	}

	if updateBaseline {
		var prev *lint.Baseline
		if _, statErr := os.Stat(baselinePath); statErr == nil {
			prev, err = lint.LoadBaseline(baselinePath)
			if err != nil {
				fmt.Fprintf(stderr, "cawalint: %v\n", err)
				return 2
			}
		}
		b := lint.UpdateBaseline(findings, prev)
		if err := lint.SaveBaseline(baselinePath, b); err != nil {
			fmt.Fprintf(stderr, "cawalint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "cawalint: wrote %d baseline entr%s to %s\n",
			len(b.Entries), plural(len(b.Entries), "y", "ies"), baselinePath)
		return 0
	}

	if baselinePath != "" {
		b, err := lint.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "cawalint: %v\n", err)
			return 2
		}
		findings = b.Apply(findings)
	}

	if jsonOut != "" {
		w := stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				fmt.Fprintf(stderr, "cawalint: %v\n", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := lint.WriteFindingsJSON(w, findings); err != nil {
			fmt.Fprintf(stderr, "cawalint: %v\n", err)
			return 2
		}
	}

	// With -json - the stdout stream IS the JSON document; keep the
	// human-readable lines off it.
	if jsonOut != "-" {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cawalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// runPerFile is the original single-package mode: lint each directory's
// package in isolation, with types resolved per file only.
func runPerFile(roots []string, dir string, stdout, stderr io.Writer) int {
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	module, err := moduleName(dir)
	if err != nil {
		fmt.Fprintf(stderr, "cawalint: %v\n", err)
		return 2
	}
	opts := lint.DefaultOptions()

	total := 0
	for _, root := range roots {
		dirs, err := goDirs(filepath.Join(dir, root))
		if err != nil {
			fmt.Fprintf(stderr, "cawalint: %v\n", err)
			return 2
		}
		for _, d := range dirs {
			rel, err := filepath.Rel(dir, d)
			if err != nil {
				rel = d
			}
			pkgPath := module + "/" + filepath.ToSlash(filepath.Clean(rel))
			findings, err := lint.Dir(d, pkgPath, opts)
			if err != nil {
				fmt.Fprintf(stderr, "cawalint: %s: %v\n", d, err)
				return 2
			}
			for _, f := range findings {
				fmt.Fprintln(stdout, f)
			}
			total += len(findings)
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "cawalint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// moduleName reads the module path from go.mod under dir.
func moduleName(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("go.mod has no module directive")
}

// goDirs returns every directory under root containing at least one
// non-test .go file, in sorted walk order.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	return out, err
}
