// Command cawalint enforces the simulator's determinism invariants
// over its Go source (see internal/lint): no wall-clock reads or
// global math/rand in simulation packages, no raw map iteration
// feeding simulation state or output, no goroutines outside
// internal/harness, internal/serve and the gpu domain runner, and no
// direct memsys.System mutation from SM-domain code.
//
// Usage:
//
//	cawalint [dirs...]   # default: ./internal
//
// Findings print as file:line:col: rule: message; the exit status is
// 1 when any finding exists, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"cawa/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cawalint [dirs...]  (default ./internal)")
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"internal"}
	}

	module, err := moduleName()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cawalint: %v\n", err)
		os.Exit(2)
	}
	opts := lint.DefaultOptions()

	total := 0
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawalint: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			pkgPath := module + "/" + filepath.ToSlash(filepath.Clean(dir))
			findings, err := lint.Dir(dir, pkgPath, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cawalint: %s: %v\n", dir, err)
				os.Exit(2)
			}
			for _, f := range findings {
				fmt.Println(f)
			}
			total += len(findings)
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "cawalint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// moduleName reads the module path from go.mod in the current
// directory (cawalint runs from the repository root, as check.sh does).
func moduleName() (string, error) {
	data, err := os.ReadFile("go.mod")
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("go.mod has no module directive")
}

// goDirs returns every directory under root containing at least one
// non-test .go file, in sorted walk order.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
		return nil
	})
	return out, err
}
