module cawa

go 1.22
