// Package perf is a stub so the profiler roots resolve.
package perf

// Profiler is the stub self-profiler.
type Profiler struct {
	now int64
}

// Now returns the stub clock.
func (p *Profiler) Now() int64 { return p.now }

// RecordShardCompute accounts one shard's compute time.
func (p *Profiler) RecordShardCompute(shard int, cycles int64) { p.now += cycles }
