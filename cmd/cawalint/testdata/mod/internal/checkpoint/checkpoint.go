// Package checkpoint is a stub so the serialization roots resolve.
package checkpoint

// Snapshot is the stub serialized state.
type Snapshot struct {
	payload []byte
}

// Capture is the stub state capture entry point.
func Capture(payload []byte) *Snapshot { return &Snapshot{payload: payload} }

// Restore is the stub resume entry point.
func Restore(s *Snapshot) []byte { return s.payload }

// Encode is the stub wire encoder.
func Encode(s *Snapshot) []byte { return append([]byte(nil), s.payload...) }

// Decode is the stub wire decoder.
func Decode(b []byte) (*Snapshot, error) { return &Snapshot{payload: b}, nil }

// StateHash is the stub digest.
func StateHash(s *Snapshot) [4]byte {
	var h [4]byte
	copy(h[:], s.payload)
	return h
}

// FunctionalLaunch is the stub timing-free kernel replay.
func FunctionalLaunch(payload []byte) int { return len(payload) }
