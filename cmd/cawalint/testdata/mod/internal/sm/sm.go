// Package sm is a stub of the real engine layout, just large enough
// for cawalint's default root set to resolve. The deliberate append in
// Cycle is the fixture's one finding.
package sm

// SM is the stub streaming multiprocessor.
type SM struct {
	buf []int
}

// Cycle simulates one cycle; the append is a deliberate hot-path
// allocation the CLI tests assert on.
func (s *SM) Cycle() {
	s.buf = append(s.buf, 1)
}
