// Package gpu is a stub so the engine-loop roots resolve.
package gpu

import "cawa/internal/sm"

// GPU is the stub engine.
type GPU struct {
	sms []*sm.SM
}

func (g *GPU) stepSMs() {
	for _, s := range g.sms {
		s.Cycle()
	}
}

func (g *GPU) fastForward() {}

// Run drives the stub engine.
func (g *GPU) Run() {
	g.stepSMs()
	g.fastForward()
}
