// Package gpu is a stub so the engine-loop roots resolve.
package gpu

import "cawa/internal/sm"

// GPU is the stub engine.
type GPU struct {
	sms []*sm.SM
}

func (g *GPU) stepSMs() {
	for _, s := range g.sms {
		s.Cycle()
	}
}

func (g *GPU) fastForward() {}

// planHorizon is the stub lookahead horizon planner.
func (g *GPU) planHorizon() int64 { return 1 }

// runBatch is the stub lookahead batch path.
func (g *GPU) runBatch() {
	_ = g.planHorizon()
	g.stepSMs()
}

// domainWorker is the stub span worker.
type domainWorker struct {
	sms []*sm.SM
}

// stepSpan is the stub worker span body.
func (w *domainWorker) stepSpan(from, to int64) {
	for t := from; t <= to; t++ {
		for _, s := range w.sms {
			s.Cycle()
		}
	}
}

// Run drives the stub engine.
func (g *GPU) Run() {
	g.stepSMs()
	g.fastForward()
	g.runBatch()
	(&domainWorker{sms: g.sms}).stepSpan(0, 1)
}
