// Package memsys is a stub so the System.Cycle root resolves.
package memsys

// System is the stub shared memory system.
type System struct {
	n int
}

// Cycle processes due events (none, in the stub).
func (s *System) Cycle() { s.n++ }
