module other

go 1.22
