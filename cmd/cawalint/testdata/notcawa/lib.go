// Package lib compiles fine but defines none of cawalint's roots, so
// interprocedural analysis must fail loudly rather than pass vacuously.
package lib

// Answer is the only symbol.
func Answer() int { return 42 }
