// Command cawabench regenerates the paper's tables and figures.
//
// Usage:
//
//	cawabench -exp fig9            # one experiment
//	cawabench -exp fig9,fig10     # several
//	cawabench -all                 # everything (slow)
//	cawabench -list                # show available experiment ids
//
// The -scale and -sms flags trade fidelity for speed; EXPERIMENTS.md
// records the reference results at the default settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cawa/internal/config"
	"cawa/internal/harness"
	"cawa/internal/workloads"
)

func main() {
	var (
		exp    = flag.String("exp", "", "comma-separated experiment ids")
		all    = flag.Bool("all", false, "run every experiment")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.Float64("scale", 1, "workload size multiplier")
		seed   = flag.Int64("seed", 1, "input generator seed")
		sms    = flag.Int("sms", 0, "override number of SMs")
		asJSON = flag.Bool("json", false, "emit tables as JSON documents")
	)
	flag.Parse()

	if *list {
		for _, id := range harness.ExperimentIDs() {
			e, _ := harness.LookupExperiment(id)
			fmt.Printf("%-14s %s\n", id, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = harness.ExperimentIDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "cawabench: pass -exp <ids>, -all, or -list")
		os.Exit(2)
	}

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	session := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: *seed})

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tbl, err := harness.RunExperiment(id, session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			doc, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "cawabench: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(doc))
			continue
		}
		fmt.Println(tbl)
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
