// Command cawabench regenerates the paper's tables and figures.
//
// Usage:
//
//	cawabench -exp fig9            # one experiment
//	cawabench -exp fig9,fig10     # several
//	cawabench -exp all             # everything
//	cawabench -all                 # everything (same as -exp all)
//	cawabench -list                # show available experiment ids
//
// Simulations fan out across a worker pool (-j, default all cores):
// every experiment declares its run matrix, the matrices are pooled and
// deduplicated, and the cells simulate in parallel before the tables
// build sequentially. Tables are byte-identical to a -j 1 run. -smpar N
// additionally runs each simulation on the parallel per-SM engine with
// up to N domain goroutines, budgeted from the same -j pool (total
// concurrency never exceeds -j); results stay byte-identical, so use it
// when runs are scarce (a single figure, the tail of a sweep) rather
// than to oversubscribe a saturated pool.
//
// The -scale and -sms flags trade fidelity for speed; EXPERIMENTS.md
// records the reference results at the default settings. -timing writes
// a machine-readable JSON summary of per-run and total wall-clock so
// sweep-throughput regressions are trackable. -perf FILE additionally
// profiles the engine's own wall-clock phases (domain compute, barrier
// wait, staged commit, memsys drain, fast-forward planning) across
// every simulation in the sweep and writes the aggregated PerfReport
// JSON — results stay byte-identical with it on. -barrier-spins pins
// the parallel engine's barrier spin budget (default adaptive), and
// -lookahead batches multi-cycle safe-horizon epochs between barriers
// (byte-identical results, fewer barriers).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cawa/internal/config"
	"cawa/internal/harness"
	"cawa/internal/obs"
	"cawa/internal/workloads"
)

// timingSummary is the machine-readable wall-clock report (-timing).
// Manifest carries the session's run manifest: the full design-point
// key and outcome of every simulation plus the run-cache hit/miss
// counters, so two sweeps can be compared mechanically.
type timingSummary struct {
	Workers      int                 `json:"workers"`
	Experiments  []experimentTiming  `json:"experiments"`
	Runs         []harness.RunTiming `json:"runs"`
	CacheHits    uint64              `json:"cache_hits"`
	CacheMisses  uint64              `json:"cache_misses"`
	SimSeconds   float64             `json:"sim_seconds"`   // summed simulation time across workers
	TotalSeconds float64             `json:"total_seconds"` // wall-clock of the whole invocation
	Manifest     *obs.Manifest       `json:"manifest"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment ids, or \"all\"")
		all     = flag.Bool("all", false, "run every experiment")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1, "workload size multiplier")
		seed    = flag.Int64("seed", 1, "input generator seed")
		sms     = flag.Int("sms", 0, "override number of SMs")
		workers = flag.Int("j", 0, "max concurrent simulations (0 = all cores)")
		smpar   = flag.Int("smpar", 1, "SM-domain goroutines per run, budgeted from the -j pool (byte-identical results; <=1 = serial)")
		asJSON  = flag.Bool("json", false, "emit tables as JSON documents")
		timing  = flag.String("timing", "", "write a JSON timing summary to this file (\"-\" = stderr)")
		fastfwd = flag.Bool("fastforward", true, "event-driven idle-cycle fast-forwarding (results are byte-identical either way)")

		perfOut      = flag.String("perf", "", "profile the engine's wall-clock phases across the sweep and write the PerfReport JSON to this file (\"-\" = stderr)")
		barrierSpins = flag.Int("barrier-spins", 0, "pin the parallel-engine barrier spin budget (0 = adaptive)")
		lookahead    = flag.Bool("lookahead", false, "multi-cycle safe-horizon epochs on the parallel engine (byte-identical results)")

		sampleWarmup   = flag.Int("sample-warmup", 0, "sampled simulation: detailed launches before the first skip window (cache/predictor warmup)")
		sampleInterval = flag.Int("sample-interval", 0, "sampled simulation: run every Nth launch after the warmup on the timing model, the rest functionally (<=1 = full detail)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cawabench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cawabench: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range harness.ExperimentIDs() {
			e, _ := harness.LookupExperiment(id)
			fmt.Printf("%-14s %s\n", id, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all || *exp == "all":
		ids = harness.ExperimentIDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "cawabench: pass -exp <ids>, -exp all, or -list")
		os.Exit(2)
	}
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}

	cfg := config.GTX480()
	if *sms > 0 {
		cfg.NumSMs = *sms
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	session := harness.NewSession(cfg, workloads.Params{Scale: *scale, Seed: *seed}).
		SetWorkers(*workers).SMParallel(*smpar)
	session.DisableFastForward = !*fastfwd
	session.BarrierSpins = *barrierSpins
	session.Lookahead = *lookahead
	session.SampleWarmup = *sampleWarmup
	session.SampleInterval = *sampleInterval
	if *perfOut != "" {
		session.EnableProfiling()
	}

	wallStart := time.Now()
	// Pool the declared run matrices of every requested experiment so
	// independent simulations from different figures share the workers.
	if err := harness.PrewarmExperiments(session, ids); err != nil {
		fmt.Fprintf(os.Stderr, "cawabench: %v\n", err)
		os.Exit(1)
	}
	summary := timingSummary{Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		tbl, err := harness.RunExperiment(id, session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		summary.Experiments = append(summary.Experiments, experimentTiming{ID: id, Seconds: elapsed})
		if *asJSON {
			doc, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "cawabench: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(doc))
			continue
		}
		fmt.Println(tbl)
		fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
	}

	if *perfOut != "" {
		rep := session.PerfReport()
		if rep == nil {
			fmt.Fprintln(os.Stderr, "cawabench: perf: no runs were profiled")
			os.Exit(1)
		}
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: perf: %v\n", err)
			os.Exit(1)
		}
		doc = append(doc, '\n')
		if *perfOut == "-" {
			os.Stderr.Write(doc)
		} else if err := os.WriteFile(*perfOut, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: perf: %v\n", err)
			os.Exit(1)
		}
		if len(rep.Shards) > 0 {
			fmt.Fprintf(os.Stderr, "cawabench: engine profile %d epochs, barrier wait %.1f%%, shard spread %.2fx\n",
				rep.Epochs, rep.BarrierWaitFrac()*100, rep.Spread())
		}
	}

	if *timing != "" {
		summary.Runs = session.Timings()
		for _, r := range summary.Runs {
			summary.SimSeconds += r.Seconds
		}
		summary.CacheHits, summary.CacheMisses = session.CacheStats()
		summary.Manifest = session.Manifest()
		summary.TotalSeconds = time.Since(wallStart).Seconds()
		doc, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: timing: %v\n", err)
			os.Exit(1)
		}
		doc = append(doc, '\n')
		if *timing == "-" {
			os.Stderr.Write(doc)
		} else if err := os.WriteFile(*timing, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cawabench: timing: %v\n", err)
			os.Exit(1)
		}
	}
}
