// Package cawa is a cycle-level GPU simulator and a reproduction of
// "CAWA: Coordinated Warp Scheduling and Cache Prioritization for
// Critical Warp Acceleration of GPGPU Workloads" (Lee, Arunkumar, Wu;
// ISCA 2015).
//
// The package re-exports the library's stable surface:
//
//   - Config / GTX480: the simulated architecture (the paper's Table 1).
//   - SystemConfig / CAWA / Baseline: a design point — warp scheduler,
//     criticality prediction (CPL) and cache prioritization (CACP).
//   - Params / Run: execute one of the twelve ported GPGPU workloads on
//     a design point and collect statistics.
//   - RunExperiment / ExperimentIDs: regenerate the paper's tables and
//     figures (see DESIGN.md for the experiment index).
//
// Lower-level building blocks (the mini ISA, the SIMT core, caches,
// schedulers) live in internal/ packages; examples/ shows how they
// compose.
package cawa

import (
	"cawa/internal/config"
	"cawa/internal/core"
	"cawa/internal/harness"
	"cawa/internal/stats"
	"cawa/internal/workloads"
)

// Config describes the simulated GPU (Table 1 of the paper).
type Config = config.Config

// GTX480 returns the paper's evaluation configuration.
func GTX480() Config { return config.GTX480() }

// SmallConfig returns a 2-SM variant for quick experimentation.
func SmallConfig() Config { return config.Small() }

// SystemConfig selects a design point: warp scheduler ("lrr", "gto",
// "2lvl", "caws", "gcaws"), CPL criticality prediction and CACP cache
// prioritization.
type SystemConfig = core.SystemConfig

// CAWA returns the paper's full coordinated design: gCAWS + CPL + CACP.
func CAWA() SystemConfig { return core.CAWA() }

// Baseline returns the round-robin baseline.
func Baseline() SystemConfig { return core.Baseline() }

// Params scales workload inputs (Scale 1 = repository defaults;
// the paper's inputs are roughly 16-64x larger).
type Params = workloads.Params

// Launch aggregates the statistics of a run: cycles, IPC, L1D MPKI,
// per-warp records and execution-time disparity.
type Launch = stats.Launch

// Result is the outcome of one workload run.
type Result = harness.Result

// Workloads lists the registered benchmark names.
func Workloads() []string { return workloads.Names() }

// Run executes a workload on a design point using the given
// architecture, and verifies the results against the workload's Go
// reference implementation.
func Run(workload string, p Params, sc SystemConfig, cfg Config) (*Result, error) {
	return harness.Run(harness.RunOptions{
		Workload: workload,
		Params:   p,
		System:   sc,
		Config:   cfg,
	})
}

// RunOptions describes one run in full detail: the workload and design
// point plus engine switches (fast-forwarding, the parallel per-SM
// engine via SMWorkers) and instrumentation hooks.
type RunOptions = harness.RunOptions

// RunWith executes one run described by opt. All engines produce
// byte-identical statistics; see RunOptions for the switches.
func RunWith(opt RunOptions) (*Result, error) { return harness.Run(opt) }

// Table is a printable experiment result.
type Table = harness.Table

// Session schedules runs shared between experiments over a bounded
// worker pool, deduplicating concurrent requests for the same design
// point (see Session.SetWorkers and Session.Prewarm).
type Session = harness.Session

// RunKey names one (application, design point) cell of a session's run
// matrix.
type RunKey = harness.RunKey

// RunTiming is the recorded wall-clock cost of one simulation.
type RunTiming = harness.RunTiming

// NewSession builds an experiment session sized to runtime.NumCPU
// workers.
func NewSession(cfg Config, p Params) *Session { return harness.NewSession(cfg, p) }

// PrewarmExperiments simulates the pooled run matrices of the named
// experiments across the session's worker pool.
func PrewarmExperiments(s *Session, ids []string) error {
	return harness.PrewarmExperiments(s, ids)
}

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return harness.ExperimentIDs() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, s *Session) (*Table, error) {
	return harness.RunExperiment(id, s)
}
